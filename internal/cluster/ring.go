// Package cluster turns provmind into a horizontally scalable service: a
// consistent-hash ring places every instance on an owner node (plus one
// replica for read failover), a static peer topology with health probing
// makes placement explicit and observable, and a routing tier (Router)
// proxies the single-node HTTP API to the owning node while serving its
// own result cache keyed by (instance, canonical request, generation).
//
// The design follows ROADMAP item 2: the registry is already lock-striped
// by FNV(instance id) within one process, so the cluster layer lifts the
// same hash family into a ring across processes. Membership is static
// (-peers on every node and on the router); rebalancing is an explicit
// admin command that moves instances by cold-snapshot blob handoff, and
// the per-instance generation counter doubles as the cross-node
// cache-coherence token — a router cache hit is served iff the serving
// node's current generation matches the entry's stamp.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node. 64 points per
// node keeps the max/min ownership skew under ~30% for small clusters
// while the ring stays a few KB.
const DefaultVNodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint32
	node string
}

// Ring is an immutable consistent-hash ring over named nodes. Instance ids
// hash with FNV-1a — the same family persist.ShardFor stripes the registry
// and WAL with — and walk the circle clockwise to their owner. Build once
// from the static membership; rebuilding with the same inputs yields the
// same placement on every process, which is what makes client-side and
// router-side routing agree without coordination.
type Ring struct {
	points  []ringPoint
	nodes   []string // sorted distinct node names
	vnodes  int
	version uint64
}

// BuildRing constructs the ring for the given node names. Names are
// deduplicated and sorted, so peer-list order never changes placement;
// vnodes <= 0 selects DefaultVNodes.
func BuildRing(names []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	var nodes []string
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sort.Strings(nodes)
	r := &Ring{nodes: nodes, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(nodes)*vnodes)
	for _, n := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash32(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (rare but possible on 32 bits) break by name so the
		// ring is deterministic across processes.
		return r.points[i].node < r.points[j].node
	})
	r.version = r.membershipHash()
	return r, nil
}

// hash32 is FNV-1a — the registry/WAL stripe hash lifted onto the ring —
// finished with a murmur-style avalanche. Raw FNV is fine for modulo
// striping but its low diffusion shows on a hash *circle*: similar short
// keys ("e2e-0".."e2e-9", "a#0".."a#63") land on correlated points,
// clustering virtual nodes and gluing runs of instance ids to one owner.
// The finalizer decorrelates them without leaving the FNV family.
func hash32(s string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	x := h.Sum32()
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// membershipHash folds the sorted membership and vnode count into the ring
// version: two processes agree on placement iff their versions match, so
// the version is what routers and nodes exchange to detect stale topology.
func (r *Ring) membershipHash() uint64 {
	h := fnv.New64a()
	for _, n := range r.nodes {
		_, _ = h.Write([]byte(n))
		_, _ = h.Write([]byte{0})
	}
	fmt.Fprintf(h, "vnodes=%d", r.vnodes)
	return h.Sum64()
}

// Version identifies the membership: equal versions mean identical
// placement for every instance id.
func (r *Ring) Version() uint64 { return r.version }

// Nodes returns the sorted distinct node names.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// VNodes returns the virtual-node count per node.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the node owning an instance id.
func (r *Ring) Owner(id string) string {
	owner, _ := r.OwnerReplica(id)
	return owner
}

// OwnerReplica returns the owning node and the next distinct node
// clockwise — the read-failover replica. With a single-node ring the
// replica equals the owner.
func (r *Ring) OwnerReplica(id string) (owner, replica string) {
	h := hash32(id)
	i := sort.Search(len(r.points), func(k int) bool { return r.points[k].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	owner = r.points[i].node
	replica = owner
	for k := 1; k < len(r.points); k++ {
		p := r.points[(i+k)%len(r.points)]
		if p.node != owner {
			replica = p.node
			break
		}
	}
	return owner, replica
}
