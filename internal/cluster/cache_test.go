package cluster

import (
	"fmt"
	"testing"

	"provmin/internal/metrics"
)

func testEntry(id string, n int, body string) *cacheEntry {
	return &cacheEntry{
		key:    cacheKey(id, "query", fmt.Sprintf("q%d", n)),
		id:     id,
		gen:    1,
		status: 200,
		body:   []byte(body),
		ctype:  "application/json",
	}
}

// TestRouterCacheNoByteBound is the regression test for the maxBytes <= 0
// bug: put compared every entry's cost against the bound without checking
// that a bound was set, so cost > 0 > maxBytes rejected everything and a
// zero byte bound silently disabled the cache instead of meaning "no byte
// bound"; the eviction loop had the same unguarded comparison and would
// have evicted the whole cache on the next put.
func TestRouterCacheNoByteBound(t *testing.T) {
	for _, maxBytes := range []int64{0, -1} {
		t.Run(fmt.Sprintf("maxBytes=%d", maxBytes), func(t *testing.T) {
			c := newRouterCache(8, maxBytes, metrics.NewRegistry())
			for i := 0; i < 4; i++ {
				c.put(testEntry("i1", i, "body"))
			}
			for i := 0; i < 4; i++ {
				e, ok := c.get(cacheKey("i1", "query", fmt.Sprintf("q%d", i)), 1)
				if !ok {
					t.Fatalf("entry %d missing: byte-unbounded cache rejected or evicted it", i)
				}
				if string(e.body) != "body" {
					t.Fatalf("entry %d corrupted: %q", i, e.body)
				}
			}
			if c.evictions.Value() != 0 {
				t.Fatalf("evictions = %d under the entry cap with no byte bound", c.evictions.Value())
			}
			// The entry cap still evicts.
			for i := 4; i < 10; i++ {
				c.put(testEntry("i1", i, "body"))
			}
			if c.lru.Len() != 8 {
				t.Fatalf("entries = %d, want 8 (entry cap)", c.lru.Len())
			}
		})
	}
}

// TestRouterCacheSentinels pins the size-bound sentinel convention shared
// with the engine's resultCache: maxEntries <= 0 disables the cache,
// maxBytes <= 0 removes the byte bound, positive bounds enforce.
func TestRouterCacheSentinels(t *testing.T) {
	small := testEntry("i1", 0, "x")
	big := testEntry("i1", 1, string(make([]byte, 4096)))
	cases := []struct {
		name                 string
		maxEntries           int
		maxBytes             int64
		wantSmall, wantLarge bool
	}{
		{"disabled-zero-entries", 0, 1 << 20, false, false},
		{"disabled-negative-entries", -1, 1 << 20, false, false},
		{"unbounded-zero-bytes", 8, 0, true, true},
		{"unbounded-negative-bytes", 8, -1, true, true},
		{"byte-bound-rejects-oversized", 8, 256, true, false},
		{"both-bounds", 8, 1 << 20, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newRouterCache(tc.maxEntries, tc.maxBytes, metrics.NewRegistry())
			c.put(small)
			c.put(big)
			if ok := c.contains(small.key); ok != tc.wantSmall {
				t.Errorf("small entry cached = %t, want %t", ok, tc.wantSmall)
			}
			if ok := c.contains(big.key); ok != tc.wantLarge {
				t.Errorf("oversized entry cached = %t, want %t", ok, tc.wantLarge)
			}
		})
	}
}

// TestRouterCacheStaleGeneration pins the validation discipline around the
// fixed eviction loop: a generation mismatch is a miss that removes the
// entry even when no byte bound is set.
func TestRouterCacheStaleGeneration(t *testing.T) {
	c := newRouterCache(8, 0, metrics.NewRegistry())
	e := testEntry("i1", 0, "body")
	c.put(e)
	if _, ok := c.get(e.key, 2); ok {
		t.Fatal("stale-generation entry served")
	}
	if c.contains(e.key) {
		t.Fatal("stale entry not removed")
	}
	if c.stale.Value() != 1 {
		t.Fatalf("stale counter = %d, want 1", c.stale.Value())
	}
}
