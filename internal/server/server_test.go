package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"provmin/internal/engine"
)

func newTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 4, CacheSize: 16})
	ts := httptest.NewServer(New(eng))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return ts, eng
}

func doJSON(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func createPaperInstance(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	status, body := doJSON(t, "POST", ts.URL+"/instances", map[string]string{
		"initial": "R r1 a a\nR r2 a b\nR r3 b a",
	})
	if status != http.StatusCreated {
		t.Fatalf("create instance: status %d: %s", status, body)
	}
	var info struct {
		ID     string `json:"id"`
		Tuples int    `json:"tuples"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Tuples != 3 {
		t.Fatalf("unexpected instance info: %s", body)
	}
	return info.ID
}

// TestEndToEndCoreCaching is the acceptance-criteria suite: create an
// instance, ingest tuples, run the same core query twice, observe the
// cache hit in /metrics, and require byte-identical core provenance.
func TestEndToEndCoreCaching(t *testing.T) {
	ts, _ := newTestServer(t)
	id := createPaperInstance(t, ts)

	// Batched ingest of two more facts.
	status, body := doJSON(t, "POST", ts.URL+"/instances/"+id+"/tuples", map[string]any{
		"facts": []map[string]any{
			{"rel": "R", "tag": "r4", "values": []string{"b", "b"}},
			{"rel": "R", "tag": "r5", "values": []string{"c", "a"}},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", status, body)
	}
	var ing struct {
		Ingested int `json:"ingested"`
		Instance struct {
			Tuples  int    `json:"tuples"`
			Version uint64 `json:"version"`
		} `json:"instance"`
	}
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Ingested != 2 || ing.Instance.Tuples != 5 || ing.Instance.Version == 0 {
		t.Fatalf("unexpected ingest response: %s", body)
	}

	coreBody := map[string]string{
		"instance": id,
		"query":    "ans(x) :- R(x,y), R(y,x)",
	}
	type coreResp struct {
		CacheHit  bool            `json:"cache_hit"`
		Minimized string          `json:"minimized"`
		Tuples    json.RawMessage `json:"tuples"`
	}
	var first, second coreResp

	status, body = doJSON(t, "POST", ts.URL+"/core", coreBody)
	if status != http.StatusOK {
		t.Fatalf("core #1: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatalf("first core request reported cache_hit: %s", body)
	}

	status, body = doJSON(t, "POST", ts.URL+"/core", coreBody)
	if status != http.StatusOK {
		t.Fatalf("core #2: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatalf("second core request missed the cache: %s", body)
	}

	// Byte-identical core provenance across cold and cached runs.
	if !bytes.Equal(first.Tuples, second.Tuples) {
		t.Fatalf("core provenance differs between runs:\n#1: %s\n#2: %s", first.Tuples, second.Tuples)
	}
	if first.Minimized != second.Minimized {
		t.Fatalf("minimized form differs: %q vs %q", first.Minimized, second.Minimized)
	}

	// The cache hit is visible in /metrics (Prometheus text).
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"engine_cache_hits_total 1",
		"engine_cache_misses_total 1",
		"engine_core_total 2",
		"engine_instances 1",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q:\n%s", want, prom)
		}
	}

	// And in the JSON snapshot.
	status, body = doJSON(t, "GET", ts.URL+"/metrics?format=json", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics json: status %d", status)
	}
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics snapshot not JSON: %v", err)
	}
	if snap["engine_cache_hits_total"] != float64(1) {
		t.Fatalf("snapshot cache hits = %v, want 1", snap["engine_cache_hits_total"])
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	id := createPaperInstance(t, ts)
	status, body := doJSON(t, "POST", ts.URL+"/query", map[string]string{
		"instance": id,
		"query":    "ans(x) :- R(x,y), R(y,x)",
	})
	if status != http.StatusOK {
		t.Fatalf("query: status %d: %s", status, body)
	}
	var out struct {
		Class  string `json:"class"`
		Tuples []struct {
			Tuple      []string `json:"tuple"`
			Provenance string   `json:"provenance"`
		} `json:"tuples"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Tuples) != 2 {
		t.Fatalf("got %d tuples, want 2: %s", len(out.Tuples), body)
	}
	if out.Class == "" {
		t.Fatalf("missing query class: %s", body)
	}
	for _, ot := range out.Tuples {
		if ot.Provenance == "" {
			t.Fatalf("tuple %v missing provenance", ot.Tuple)
		}
	}
}

func TestCoreGetAndDirect(t *testing.T) {
	ts, _ := newTestServer(t)
	id := createPaperInstance(t, ts)
	q := "ans(x) :- R(x,y), R(y,x)"

	status, viaPost := doJSON(t, "POST", ts.URL+"/core", map[string]string{"instance": id, "query": q})
	if status != http.StatusOK {
		t.Fatalf("POST /core: %d: %s", status, viaPost)
	}
	status, viaGet := doJSON(t, "GET",
		ts.URL+"/core?instance="+id+"&q="+strings.ReplaceAll(q, " ", "+"), nil)
	if status != http.StatusOK {
		t.Fatalf("GET /core: %d: %s", status, viaGet)
	}
	status, viaDirect := doJSON(t, "POST", ts.URL+"/core",
		map[string]any{"instance": id, "query": q, "direct": true})
	if status != http.StatusOK {
		t.Fatalf("direct core: %d: %s", status, viaDirect)
	}

	tuples := func(raw []byte) string {
		var v struct {
			Tuples json.RawMessage `json:"tuples"`
		}
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatal(err)
		}
		return string(v.Tuples)
	}
	if tuples(viaPost) != tuples(viaGet) {
		t.Fatalf("GET core differs from POST:\n%s\n%s", viaGet, viaPost)
	}
	if tuples(viaPost) != tuples(viaDirect) {
		t.Fatalf("direct (Thm 5.1) core differs from minimized-eval core:\n%s\n%s", viaDirect, viaPost)
	}
}

func TestAppsEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	id := createPaperInstance(t, ts)
	q := "ans(x) :- R(x,y), R(y,x)"

	status, body := doJSON(t, "POST", ts.URL+"/prob", map[string]any{
		"instance": id, "query": q, "tuple": []string{"a"}, "default": 0.5, "use_core": true,
	})
	if status != http.StatusOK {
		t.Fatalf("prob: %d: %s", status, body)
	}
	var pr struct {
		Probability float64 `json:"probability"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	// P((a)) = 1 - (1-1/2)(1-1/4) = 0.625 with independent p=1/2 tags.
	if pr.Probability < 0.624 || pr.Probability > 0.626 {
		t.Fatalf("probability = %v, want 0.625", pr.Probability)
	}

	status, body = doJSON(t, "POST", ts.URL+"/trust", map[string]any{
		"instance": id, "query": q, "tuple": []string{"a"}, "default": 1.0,
	})
	if status != http.StatusOK {
		t.Fatalf("trust: %d: %s", status, body)
	}
	var tr struct {
		Mode  string  `json:"mode"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Mode != "cost" || tr.Value != 2 {
		t.Fatalf("trust = %+v, want cost 2", tr)
	}

	status, body = doJSON(t, "POST", ts.URL+"/deletion", map[string]any{
		"instance": id, "query": q, "deleted": []string{"r2"},
	})
	if status != http.StatusOK {
		t.Fatalf("deletion: %d: %s", status, body)
	}
	var del struct {
		Survivors [][]string `json:"survivors"`
		Lost      [][]string `json:"lost"`
	}
	if err := json.Unmarshal(body, &del); err != nil {
		t.Fatal(err)
	}
	if len(del.Survivors) != 1 || len(del.Lost) != 1 {
		t.Fatalf("deletion = %+v, want 1 survivor 1 lost", del)
	}
}

func TestInstanceLifecycleAndErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	id := createPaperInstance(t, ts)

	status, body := doJSON(t, "GET", ts.URL+"/instances", nil)
	if status != http.StatusOK || !strings.Contains(string(body), id) {
		t.Fatalf("list: %d: %s", status, body)
	}
	status, _ = doJSON(t, "GET", ts.URL+"/instances/"+id, nil)
	if status != http.StatusOK {
		t.Fatalf("get: %d", status)
	}
	status, _ = doJSON(t, "GET", ts.URL+"/instances/nope", nil)
	if status != http.StatusNotFound {
		t.Fatalf("get missing: %d, want 404", status)
	}
	status, _ = doJSON(t, "POST", ts.URL+"/query", map[string]string{"instance": "nope", "query": "ans(x) :- R(x,y)"})
	if status != http.StatusNotFound {
		t.Fatalf("query missing instance: %d, want 404", status)
	}
	status, _ = doJSON(t, "POST", ts.URL+"/query", map[string]string{"instance": id, "query": "not a query"})
	if status != http.StatusBadRequest {
		t.Fatalf("bad query: %d, want 400", status)
	}
	status, _ = doJSON(t, "POST", ts.URL+"/query", map[string]string{"instance": id, "query": "ans(x) :- R(x,y)", "typo": "x"})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", status)
	}
	status, _ = doJSON(t, "DELETE", ts.URL+"/instances/"+id, nil)
	if status != http.StatusOK {
		t.Fatalf("delete: %d", status)
	}
	status, _ = doJSON(t, "DELETE", ts.URL+"/instances/"+id, nil)
	if status != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", status)
	}

	status, body = doJSON(t, "GET", ts.URL+"/healthz", nil)
	if status != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d: %s", status, body)
	}
}

// TestUnknownInstance404AllRoutes is the regression table for the error
// mapping audit: every endpoint that names an instance must answer 404 —
// never 500 — when the id is unknown, no matter how deeply the engine
// wraps its lookup failure.
func TestUnknownInstance404AllRoutes(t *testing.T) {
	ts, _ := newTestServer(t)
	const q = "ans(x) :- R(x,y), R(y,x)"
	cases := []struct {
		name   string
		method string
		path   string
		body   any
	}{
		{"query", "POST", "/query", map[string]any{"instance": "nope", "query": q}},
		{"core_post", "POST", "/core", map[string]any{"instance": "nope", "query": q}},
		{"core_post_direct", "POST", "/core", map[string]any{"instance": "nope", "query": q, "direct": true}},
		{"core_get", "GET", "/core?instance=nope&q=ans(x)+:-+R(x,y)", nil},
		{"prob", "POST", "/prob", map[string]any{"instance": "nope", "query": q, "tuple": []string{"a"}}},
		{"trust", "POST", "/trust", map[string]any{"instance": "nope", "query": q, "tuple": []string{"a"}}},
		{"deletion", "POST", "/deletion", map[string]any{"instance": "nope", "query": q, "deleted": []string{"r1"}}},
		{"ingest", "POST", "/instances/nope/tuples", map[string]any{"facts": []map[string]any{{"rel": "R", "tag": "t", "values": []string{"a", "a"}}}}},
		{"get_instance", "GET", "/instances/nope", nil},
		{"drop_instance", "DELETE", "/instances/nope", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := doJSON(t, tc.method, ts.URL+tc.path, tc.body)
			if status != http.StatusNotFound {
				t.Fatalf("%s %s: status %d, want 404: %s", tc.method, tc.path, status, body)
			}
			if !strings.Contains(string(body), "no such instance") {
				t.Errorf("%s %s: error body %s, want it to name the missing instance", tc.method, tc.path, body)
			}
		})
	}
}

// TestResultCacheOverHTTP: the /query and /core responses carry the
// result-cache status, ingest invalidates, and /admin/cache reports the
// occupancy.
func TestResultCacheOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t)
	id := createPaperInstance(t, ts)
	q := map[string]string{"instance": id, "query": "ans(x) :- R(x,y), R(y,x)"}

	var out struct {
		Version        uint64          `json:"version"`
		ResultCacheHit bool            `json:"result_cache_hit"`
		MaintainedHit  bool            `json:"maintained_hit"`
		Tuples         json.RawMessage `json:"tuples"`
	}
	status, body := doJSON(t, "POST", ts.URL+"/query", q)
	if status != http.StatusOK {
		t.Fatalf("query #1: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ResultCacheHit {
		t.Fatalf("first query reported result_cache_hit: %s", body)
	}
	coldTuples := append([]byte(nil), out.Tuples...)

	status, body = doJSON(t, "POST", ts.URL+"/query", q)
	if status != http.StatusOK {
		t.Fatalf("query #2: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.ResultCacheHit {
		t.Fatalf("repeat query missed the result cache: %s", body)
	}
	if !bytes.Equal(out.Tuples, coldTuples) {
		t.Fatalf("cached tuples differ from cold run:\ncold: %s\nhit:  %s", coldTuples, out.Tuples)
	}

	// Ingest promotes the entry with delta maintenance: the next query is
	// still a hit, at the bumped generation, flagged maintained — and its
	// tuples reflect the inserted fact.
	status, body = doJSON(t, "POST", ts.URL+"/instances/"+id+"/tuples", map[string]any{
		"facts": []map[string]any{{"rel": "R", "tag": "r4", "values": []string{"b", "b"}}},
	})
	if status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}
	prevVer := out.Version
	status, body = doJSON(t, "POST", ts.URL+"/query", q)
	if status != http.StatusOK {
		t.Fatalf("query #3: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.ResultCacheHit || !out.MaintainedHit || out.Version != prevVer+1 {
		t.Fatalf("query after ingest: hit=%t maintained=%t version %d -> %d: %s",
			out.ResultCacheHit, out.MaintainedHit, prevVer, out.Version, body)
	}
	if !bytes.Contains(out.Tuples, []byte("r4")) {
		t.Fatalf("maintained result does not reflect the inserted fact: %s", out.Tuples)
	}

	// /core reports both cache layers.
	var core struct {
		CacheHit       bool `json:"cache_hit"`
		ResultCacheHit bool `json:"result_cache_hit"`
	}
	for i := 0; i < 2; i++ {
		status, body = doJSON(t, "POST", ts.URL+"/core", q)
		if status != http.StatusOK {
			t.Fatalf("core #%d: %d %s", i+1, status, body)
		}
	}
	if err := json.Unmarshal(body, &core); err != nil {
		t.Fatal(err)
	}
	if !core.CacheHit || !core.ResultCacheHit {
		t.Fatalf("second core: %s", body)
	}

	// /admin/cache exposes totals and per-instance occupancy.
	var stats struct {
		Enabled   bool  `json:"enabled"`
		Entries   int64 `json:"entries"`
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Instances []struct {
			ID         string `json:"id"`
			Generation uint64 `json:"generation"`
			Entries    int    `json:"entries"`
		} `json:"instances"`
	}
	status, body = doJSON(t, "GET", ts.URL+"/admin/cache", nil)
	if status != http.StatusOK {
		t.Fatalf("/admin/cache: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Enabled || stats.Entries == 0 || stats.Hits == 0 || stats.Misses == 0 {
		t.Fatalf("/admin/cache stats: %s", body)
	}
	if len(stats.Instances) != 1 || stats.Instances[0].ID != id || stats.Instances[0].Generation != out.Version {
		t.Fatalf("/admin/cache per-instance: %s", body)
	}

	// The engine_result_cache_* family is exported.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"engine_result_cache_hits_total",
		"engine_result_cache_misses_total",
		"engine_result_cache_entries",
		"engine_result_cache_bytes",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestConcurrentHTTP drives the full stack concurrently: one instance,
// parallel query/core/ingest requests over real HTTP. Under -race this
// covers handler → engine → batcher interleavings end to end.
func TestConcurrentHTTP(t *testing.T) {
	ts, _ := newTestServer(t)
	id := createPaperInstance(t, ts)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch i % 3 {
				case 0:
					st, b := doJSON(t, "POST", ts.URL+"/query", map[string]string{
						"instance": id, "query": "ans(x) :- R(x,y), R(y,x)",
					})
					if st != http.StatusOK {
						errs <- fmt.Sprintf("query: %d: %s", st, b)
					}
				case 1:
					st, b := doJSON(t, "POST", ts.URL+"/core", map[string]string{
						"instance": id, "query": "ans(x) :- R(x,y), R(y,x)",
					})
					if st != http.StatusOK {
						errs <- fmt.Sprintf("core: %d: %s", st, b)
					}
				case 2:
					st, b := doJSON(t, "POST", ts.URL+"/instances/"+id+"/tuples", map[string]any{
						"facts": []map[string]any{{
							"rel": "R", "tag": fmt.Sprintf("g%d_%d", g, i),
							"values": []string{fmt.Sprintf("v%d_%d", g, i), "a"},
						}},
					})
					if st != http.StatusOK {
						errs <- fmt.Sprintf("ingest: %d: %s", st, b)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
