package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"provmin/internal/engine"
	"provmin/internal/tier"
)

// newTieredServer serves an engine with an FS cold backend; the janitor is
// off so tests control evictions via /admin/evict.
func newTieredServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	backend, err := tier.NewFSBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 4, CacheSize: 16, Backend: backend, JanitorInterval: -1})
	ts := httptest.NewServer(New(eng))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return ts, eng
}

func TestAdminEvictAndResidency(t *testing.T) {
	ts, _ := newTieredServer(t)
	id := createPaperInstance(t, ts)

	status, body := doJSON(t, "POST", ts.URL+"/admin/evict", map[string]string{"instance": id})
	if status != http.StatusOK {
		t.Fatalf("evict: %d %s", status, body)
	}

	// Residency reports it cold — and must not fault it back in.
	status, body = doJSON(t, "GET", ts.URL+"/admin/residency", nil)
	if status != http.StatusOK {
		t.Fatalf("residency: %d %s", status, body)
	}
	var res struct {
		Enabled  bool   `json:"enabled"`
		Backend  string `json:"backend"`
		Resident []struct {
			ID    string `json:"id"`
			Bytes int64  `json:"bytes"`
		} `json:"resident"`
		Cold      []string `json:"cold"`
		Evictions int64    `json:"evictions"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("residency body %s: %v", body, err)
	}
	if !res.Enabled || res.Backend == "" {
		t.Fatalf("residency = %s, want enabled with a backend", body)
	}
	if len(res.Cold) != 1 || res.Cold[0] != id || len(res.Resident) != 0 {
		t.Fatalf("residency = %s, want %s cold and nothing resident", body, id)
	}
	if res.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", res.Evictions)
	}

	// The cold instance still lists, marked cold.
	status, body = doJSON(t, "GET", ts.URL+"/instances", nil)
	if status != http.StatusOK || !strings.Contains(string(body), `"state":"cold"`) {
		t.Fatalf("instances after evict: %d %s, want a cold entry", status, body)
	}

	// A query faults it in transparently; afterwards it is resident again
	// with a nonzero byte figure.
	status, body = doJSON(t, "POST", ts.URL+"/query", map[string]string{
		"instance": id, "query": "ans(x) :- R(x,y), R(y,x)",
	})
	if status != http.StatusOK {
		t.Fatalf("query after evict: %d %s", status, body)
	}
	status, body = doJSON(t, "GET", ts.URL+"/admin/residency", nil)
	if status != http.StatusOK {
		t.Fatal("residency after fault-in failed")
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Resident) != 1 || res.Resident[0].ID != id || res.Resident[0].Bytes <= 0 {
		t.Fatalf("residency after fault-in = %s, want %s resident with bytes > 0", body, id)
	}
	if len(res.Cold) != 0 {
		t.Fatalf("still cold after fault-in: %s", body)
	}
}

func TestAdminEvictErrors(t *testing.T) {
	tiered, _ := newTieredServer(t)
	if status, body := doJSON(t, "POST", tiered.URL+"/admin/evict", map[string]string{"instance": "nope"}); status != http.StatusNotFound {
		t.Fatalf("evict unknown: %d %s, want 404", status, body)
	}
	if status, body := doJSON(t, "POST", tiered.URL+"/admin/evict", map[string]string{}); status != http.StatusBadRequest {
		t.Fatalf("evict without instance: %d %s, want 400", status, body)
	}

	plain, _ := newTestServer(t)
	id := createPaperInstance(t, plain)
	if status, body := doJSON(t, "POST", plain.URL+"/admin/evict", map[string]string{"instance": id}); status != http.StatusConflict {
		t.Fatalf("evict untiered: %d %s, want 409", status, body)
	}
}

// TestAdminCacheReportsInstanceBytes: the per-instance byte accounting is
// exposed on /admin/cache whether or not tiering is on.
func TestAdminCacheReportsInstanceBytes(t *testing.T) {
	ts, _ := newTestServer(t)
	id := createPaperInstance(t, ts)
	status, body := doJSON(t, "GET", ts.URL+"/admin/cache", nil)
	if status != http.StatusOK {
		t.Fatalf("admin/cache: %d %s", status, body)
	}
	var st struct {
		Instances []struct {
			ID            string `json:"id"`
			InstanceBytes int64  `json:"instance_bytes"`
		} `json:"instances"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Instances) != 1 || st.Instances[0].ID != id || st.Instances[0].InstanceBytes <= 0 {
		t.Fatalf("admin/cache = %s, want %s with instance_bytes > 0", body, id)
	}
}

// TestResidencyMetricsExposed: the tiering gauges/counters appear in
// /metrics Prometheus output.
func TestResidencyMetricsExposed(t *testing.T) {
	ts, _ := newTieredServer(t)
	id := createPaperInstance(t, ts)
	if status, body := doJSON(t, "POST", ts.URL+"/admin/evict", map[string]string{"instance": id}); status != http.StatusOK {
		t.Fatalf("evict: %d %s", status, body)
	}
	status, body := doJSON(t, "GET", ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	for _, want := range []string{
		"engine_resident_instances 0",
		"engine_cold_instances 1",
		"engine_resident_bytes 0",
		"engine_evictions_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
