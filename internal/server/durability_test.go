package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"provmin/internal/engine"
	"provmin/internal/persist"
)

func durableServer(t *testing.T, dir string) (*httptest.Server, *engine.Engine, *persist.Log) {
	t.Helper()
	l, err := persist.Open(persist.Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 2, IngestBatchSize: 8, IngestMaxWait: time.Millisecond, Persist: l})
	ts := httptest.NewServer(New(eng))
	return ts, eng, l
}

// TestCrashMidIngestCoreByteIdentical is the acceptance scenario: N
// acknowledged ingests, then the WAL writer starts failing mid-ingest (the
// disk "dies"), the process is killed without any shutdown path, and the
// restarted service must answer /core with the exact pre-crash bytes.
func TestCrashMidIngestCoreByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ts, _, l := durableServer(t, dir)

	code, _ := doJSON(t, "POST", ts.URL+"/instances", map[string]string{"initial": "R r1 a a\nR r2 a b\nR r3 b a"})
	if code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	// N acknowledged ingests.
	for i := 0; i < 5; i++ {
		code, body := doJSON(t, "POST", ts.URL+"/instances/i1/tuples", map[string]any{
			"facts": []engine.Fact{{Rel: "R", Tag: fmt.Sprintf("w%d", i), Values: []string{fmt.Sprintf("n%d", i), "a"}}},
		})
		if code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, code, body)
		}
	}
	coreURL := "/core?instance=i1&q=" + "ans(x)+:-+R(x,y),+R(y,x)"
	code, wantCore := doJSON(t, "GET", ts.URL+coreURL, nil)
	if code != http.StatusOK {
		t.Fatalf("core: %d %s", code, wantCore)
	}

	// The disk dies mid-ingest: the next ingest must NOT be acknowledged.
	l.InjectWriteError(errors.New("injected: wal device gone"))
	code, body := doJSON(t, "POST", ts.URL+"/instances/i1/tuples", map[string]any{
		"facts": []engine.Fact{{Rel: "R", Tag: "lost", Values: []string{"lost", "a"}}},
	})
	if code == http.StatusOK {
		t.Fatalf("ingest acknowledged despite WAL failure: %s", body)
	}
	// SIGKILL: no Close, no flush. Only the HTTP listener is torn down.
	ts.Close()

	ts2, eng2, _ := durableServer(t, dir)
	defer ts2.Close()
	defer eng2.Close()
	code, gotCore := doJSON(t, "GET", ts2.URL+coreURL, nil)
	if code != http.StatusOK {
		t.Fatalf("core after recovery: %d %s", code, gotCore)
	}
	if !bytes.Equal(gotCore, wantCore) {
		t.Errorf("/core not byte-identical after crash recovery:\npre:  %s\npost: %s", wantCore, gotCore)
	}
	// The unacknowledged fact must not have survived.
	if strings.Contains(string(gotCore), "lost") {
		t.Error("unacknowledged ingest resurrected by recovery")
	}
	code, info := doJSON(t, "GET", ts2.URL+"/instances/i1", nil)
	if code != http.StatusOK || !strings.Contains(string(info), `"tuples":8`) {
		t.Errorf("instance after recovery: %d %s (want 8 tuples: 3 seed + 5 acked)", code, info)
	}
}

// TestAdminSnapshotCompact exercises the admin endpoints end to end.
func TestAdminSnapshotCompact(t *testing.T) {
	dir := t.TempDir()
	ts, eng, _ := durableServer(t, dir)
	defer ts.Close()
	defer eng.Close()

	doJSON(t, "POST", ts.URL+"/instances", map[string]string{"initial": "R r1 a a"})
	code, body := doJSON(t, "POST", ts.URL+"/admin/snapshot", nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot: %d %s", code, body)
	}
	var stats struct {
		Shards    int   `json:"shards"`
		Instances int   `json:"instances"`
		Bytes     int64 `json:"bytes"`
		Compacted bool  `json:"compacted"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 4 || stats.Instances != 1 || stats.Bytes == 0 || stats.Compacted {
		t.Errorf("snapshot stats = %+v", stats)
	}
	code, body = doJSON(t, "POST", ts.URL+"/admin/compact", nil)
	if code != http.StatusOK {
		t.Fatalf("compact: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Compacted {
		t.Errorf("compact stats = %+v", stats)
	}
}

// TestAdminSnapshotEphemeral409: asking a memory-only server to persist is
// a configuration conflict.
func TestAdminSnapshotEphemeral409(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1})
	defer eng.Close()
	ts := httptest.NewServer(New(eng))
	defer ts.Close()
	code, body := doJSON(t, "POST", ts.URL+"/admin/snapshot", nil)
	if code != http.StatusConflict {
		t.Fatalf("snapshot on ephemeral server: %d %s, want 409", code, body)
	}
	if !strings.Contains(string(body), "durability disabled") {
		t.Errorf("error body %s", body)
	}
}
