// Package server exposes the provenance engine as an HTTP/JSON API — the
// provmind service. Endpoints:
//
//	POST   /instances                create an instance (optional seed facts)
//	GET    /instances                list instances
//	GET    /instances/{id}           describe one instance
//	DELETE /instances/{id}           drop an instance
//	POST   /instances/{id}/tuples    batched tuple ingest
//	POST   /query                    evaluate with full provenance
//	POST   /core                     core provenance (cached p-minimal form)
//	GET    /core                     same, via ?instance= & ?q=
//	POST   /prob                     derivation probability (apps/prob)
//	POST   /trust                    trust cost / confidence (apps/trust)
//	POST   /deletion                 deletion propagation (apps/deletion)
//	GET    /gen/{id}                 instance generation (cluster cache token)
//	GET    /topology                 ring version + node health (clustered)
//	POST   /admin/snapshot           write durable snapshots (keep WAL)
//	POST   /admin/compact            snapshot + reset write-ahead logs
//	POST   /admin/evict              evict an instance to the cold tier
//	POST   /admin/adopt              adopt an instance blob from the shared tier
//	POST   /admin/release            release an instance for cluster handoff
//	GET    /admin/residency          resident/cold split, bytes, LRU ages
//	GET    /admin/cache              result-cache occupancy
//	GET    /metrics                  Prometheus text (or ?format=json)
//	GET    /healthz                  liveness + instance count
//
// All request and response bodies are JSON; errors are {"error": "..."}
// with a matching HTTP status.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"provmin/internal/cluster"
	"provmin/internal/db"
	"provmin/internal/engine"
	"provmin/internal/eval"
	"provmin/internal/persist"
	"provmin/internal/query"
)

// Server routes HTTP requests to an engine.
type Server struct {
	eng *engine.Engine
	// topo is non-nil when this node is part of a cluster: it serves
	// GET /topology and arms the stale-ring request check.
	topo *cluster.Topology
	mux  *http.ServeMux
}

// New builds a Server over eng and registers all routes.
func New(eng *engine.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.route("POST /instances", "create_instance", s.handleCreateInstance)
	s.route("GET /instances", "list_instances", s.handleListInstances)
	s.route("GET /instances/{id}", "get_instance", s.handleGetInstance)
	s.route("DELETE /instances/{id}", "drop_instance", s.handleDropInstance)
	s.route("POST /instances/{id}/tuples", "ingest", s.handleIngest)
	s.route("POST /query", "query", s.handleQuery)
	s.route("POST /core", "core", s.handleCore)
	s.route("GET /core", "core", s.handleCoreGet)
	s.route("POST /prob", "prob", s.handleProb)
	s.route("POST /trust", "trust", s.handleTrust)
	s.route("POST /deletion", "deletion", s.handleDeletion)
	s.route("GET /gen/{id}", "generation", s.handleGeneration)
	s.route("GET /topology", "topology", s.handleTopology)
	s.route("POST /admin/snapshot", "snapshot", s.handleSnapshot)
	s.route("POST /admin/compact", "compact", s.handleCompact)
	s.route("POST /admin/evict", "evict", s.handleEvict)
	s.route("POST /admin/adopt", "adopt", s.handleAdopt)
	s.route("POST /admin/release", "release", s.handleRelease)
	s.route("GET /admin/residency", "residency", s.handleResidency)
	s.route("GET /admin/cache", "cache_stats", s.handleCacheStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// NewClustered builds a Server that also participates in a cluster: it
// serves GET /topology from topo and rejects requests stamped with a ring
// version other than its own (409), so a router holding a stale member
// list fails fast instead of reading from the wrong node.
func NewClustered(eng *engine.Engine, topo *cluster.Topology) *Server {
	s := New(eng)
	s.topo = topo
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route registers a handler wrapped with request counting and latency
// recording under http_<op>_* metric names.
func (s *Server) route(pattern, op string, h func(w http.ResponseWriter, r *http.Request) error) {
	reqs := s.eng.Metrics().Counter("http_requests_total")
	errs := s.eng.Metrics().Counter("http_errors_total")
	lat := s.eng.Metrics().Histogram("http_request_seconds")
	//lint:ignore provlint/metricsconst op is a bounded code-owned enumeration: one literal per route registration
	opLat := s.eng.Metrics().Histogram("http_" + op + "_seconds")
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		err := s.checkRing(r)
		if err == nil {
			err = h(w, r)
		}
		if err != nil {
			errs.Inc()
			writeError(w, err)
		}
		d := time.Since(start)
		lat.Observe(d)
		opLat.Observe(d)
	})
}

// checkRing rejects requests whose X-Provmind-Ring header names a ring
// version other than this node's. Nil (pass) when the node is unclustered
// or the request carries no stamp, so plain curl keeps working.
func (s *Server) checkRing(r *http.Request) error {
	if s.topo == nil {
		return nil
	}
	return cluster.CheckRing(r, s.topo.Ring().Version())
}

// apiError carries an HTTP status with an error.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &apiError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var (
		ae  *apiError
		sre *cluster.StaleRingError
	)
	switch {
	case errors.As(err, &ae):
		status = ae.status
	case errors.As(err, &sre):
		// The router's member list disagrees with ours: 409 tells it to
		// refresh /topology and re-route rather than trust this node.
		status = http.StatusConflict
	case errors.Is(err, engine.ErrBorrowed):
		// Writes to a borrowed (read-only replica) copy conflict with the
		// routing invariant that the ring owner takes all writes.
		status = http.StatusConflict
	case errors.Is(err, engine.ErrInstanceExists):
		status = http.StatusConflict
	case errors.Is(err, engine.ErrBadInstanceID):
		status = http.StatusBadRequest
	case errors.Is(err, engine.ErrClosed):
		// Engine shut down while the HTTP server drains: availability,
		// not client fault — tell well-behaved clients to retry.
		status = http.StatusServiceUnavailable
	case errors.Is(err, engine.ErrNoTiering):
		// The operator asked an untiered deployment to evict: a
		// configuration conflict, like ErrNoPersistence on /admin/snapshot.
		status = http.StatusConflict
	case errors.Is(err, engine.ErrUnknownInstance):
		// Every endpoint that names an instance — /query, /core, /prob,
		// /trust, /deletion, ingest — must answer 404 for an unknown id,
		// never 500: the sentinel makes that hold no matter how deeply the
		// engine wraps the lookup failure.
		status = http.StatusNotFound
	case strings.Contains(err.Error(), "no such instance"):
		// Message-based fallback for errors that crossed a boundary that
		// dropped the wrap chain.
		status = http.StatusNotFound
	case strings.Contains(err.Error(), "arity"):
		// Arity mismatches surface from eval/db when a query or fact
		// disagrees with the instance schema — client errors, not ours.
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// decodeJSON reads a JSON body into v, rejecting unknown fields so typos in
// request payloads fail loudly instead of silently evaluating defaults.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid JSON body: %v", err)
	}
	return nil
}

// parseUnion parses query text, mapping failures to 400s.
func parseUnion(text string) (*query.UCQ, error) {
	if strings.TrimSpace(text) == "" {
		return nil, badRequest("missing query")
	}
	u, err := query.ParseUnion(text)
	if err != nil {
		return nil, badRequest("parse query: %v", err)
	}
	return u, nil
}

// tupleOut is one annotated output tuple on the wire.
type tupleOut struct {
	Tuple      []string `json:"tuple"`
	Provenance string   `json:"provenance"`
}

func resultOut(res *eval.Result) []tupleOut {
	out := make([]tupleOut, 0, res.Len())
	for _, t := range res.Tuples() {
		out = append(out, tupleOut{Tuple: t.Tuple, Provenance: t.Prov.String()})
	}
	return out
}

func tuplesOut(ts []db.Tuple) [][]string {
	out := make([][]string, 0, len(ts))
	for _, t := range ts {
		out = append(out, t)
	}
	return out
}

// --- instance management ---

type createInstanceReq struct {
	// ID pins the instance id instead of letting the engine generate one.
	// The cluster router names instances itself so every node (and the
	// ring) agrees on the id before the instance exists anywhere.
	ID string `json:"id,omitempty"`
	// Initial seeds the instance from db text format, one fact per line:
	// "<relation> <tag> <value>...".
	Initial string `json:"initial,omitempty"`
	// Facts seeds the instance from structured facts.
	Facts []engine.Fact `json:"facts,omitempty"`
}

func (s *Server) handleCreateInstance(w http.ResponseWriter, r *http.Request) error {
	var req createInstanceReq
	if r.ContentLength != 0 {
		if err := decodeJSON(r, &req); err != nil {
			return err
		}
	}
	var (
		info engine.InstanceInfo
		err  error
	)
	if req.ID != "" {
		info, err = s.eng.CreateInstanceWithID(req.ID, req.Initial)
	} else {
		info, err = s.eng.CreateInstance(req.Initial)
	}
	if err != nil {
		switch {
		case errors.Is(err, engine.ErrClosed),
			errors.Is(err, engine.ErrInstanceExists),
			errors.Is(err, engine.ErrBadInstanceID):
			return err // mapped to 503 / 409 / 400 by writeError
		case errors.Is(err, engine.ErrInvalidSeed):
			return badRequest("%v", err)
		default:
			// A durable-storage failure, not a malformed request: 500, so
			// clients retry instead of "fixing" a request that was fine.
			// When the create was applied but not confirmed durable, the
			// engine still returns the live instance's info — name it, so
			// the client can find (and drop or reuse) the orphan instead
			// of blindly retrying into duplicates.
			if info.ID != "" {
				return &apiError{status: http.StatusInternalServerError,
					msg: fmt.Sprintf("%v (instance %s is live but its creation is not confirmed durable)", err, info.ID)}
			}
			return err
		}
	}
	if len(req.Facts) > 0 {
		if err := s.eng.Ingest(info.ID, req.Facts); err != nil {
			_, _ = s.eng.DropInstance(info.ID)
			return badRequest("seed facts: %v", err)
		}
		info, _ = s.eng.Instance(info.ID)
	}
	writeJSON(w, http.StatusCreated, info)
	return nil
}

func (s *Server) handleListInstances(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, map[string]any{"instances": s.eng.Instances()})
	return nil
}

func (s *Server) handleGetInstance(w http.ResponseWriter, r *http.Request) error {
	info, ok := s.eng.Instance(r.PathValue("id"))
	if !ok {
		return notFound("no such instance %q", r.PathValue("id"))
	}
	writeJSON(w, http.StatusOK, info)
	return nil
}

func (s *Server) handleDropInstance(w http.ResponseWriter, r *http.Request) error {
	dropped, err := s.eng.DropInstance(r.PathValue("id"))
	if err != nil {
		// A WAL failure, not a missing instance: 500, so the client never
		// mistakes a live (or non-durably-dropped) instance for deleted.
		return err
	}
	if !dropped {
		return notFound("no such instance %q", r.PathValue("id"))
	}
	writeJSON(w, http.StatusOK, map[string]bool{"dropped": true})
	return nil
}

type ingestReq struct {
	Facts []engine.Fact `json:"facts"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) error {
	var req ingestReq
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	if len(req.Facts) == 0 {
		return badRequest("no facts to ingest")
	}
	id := r.PathValue("id")
	if err := s.eng.Ingest(id, req.Facts); err != nil {
		return err
	}
	info, _ := s.eng.Instance(id)
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested": len(req.Facts),
		"instance": info,
	})
	return nil
}

// --- query & core ---

type queryReq struct {
	Instance string `json:"instance"`
	Query    string `json:"query"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) error {
	var req queryReq
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	u, err := parseUnion(req.Query)
	if err != nil {
		return err
	}
	out, err := s.eng.Query(r.Context(), req.Instance, u)
	if err != nil {
		return err
	}
	// The generation header lets the cluster router cache this response
	// without a second round trip; it must go out before the status line.
	w.Header().Set(cluster.HeaderGeneration, strconv.FormatUint(out.Version, 10))
	writeJSON(w, http.StatusOK, map[string]any{
		"instance":         req.Instance,
		"version":          out.Version,
		"class":            query.ClassOfUnion(u).String(),
		"result_cache_hit": out.CacheHit,
		"maintained_hit":   out.MaintainedHit,
		"tuples":           resultOut(out.Result),
	})
	return nil
}

type coreReq struct {
	Instance string `json:"instance"`
	Query    string `json:"query"`
	// Direct bypasses the p-minimal query and computes cores from the
	// provenance polynomials alone (Theorem 5.1).
	Direct bool `json:"direct,omitempty"`
}

func (s *Server) handleCore(w http.ResponseWriter, r *http.Request) error {
	var req coreReq
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	return s.serveCore(w, r, req)
}

// handleCoreGet serves GET /core?instance=i1&q=... for quick curl use.
func (s *Server) handleCoreGet(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	return s.serveCore(w, r, coreReq{
		Instance: q.Get("instance"),
		Query:    q.Get("q"),
		Direct:   q.Get("direct") == "true",
	})
}

func (s *Server) serveCore(w http.ResponseWriter, r *http.Request, req coreReq) error {
	u, err := parseUnion(req.Query)
	if err != nil {
		return err
	}
	if req.Direct {
		res, err := s.eng.CoreDirect(r.Context(), req.Instance, u)
		if err != nil {
			return err
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"instance": req.Instance,
			"direct":   true,
			"tuples":   resultOut(res),
		})
		return nil
	}
	out, err := s.eng.Core(r.Context(), req.Instance, u)
	if err != nil {
		return err
	}
	w.Header().Set(cluster.HeaderGeneration, strconv.FormatUint(out.Version, 10))
	writeJSON(w, http.StatusOK, map[string]any{
		"instance":         req.Instance,
		"version":          out.Version,
		"cache_hit":        out.CacheHit,
		"result_cache_hit": out.ResultCacheHit,
		"maintained_hit":   out.MaintainedHit,
		"minimized":        out.Minimized.String(),
		"tuples":           resultOut(out.Result),
	})
	return nil
}

// --- provenance applications ---

type probReq struct {
	Instance  string             `json:"instance"`
	Query     string             `json:"query"`
	Tuple     []string           `json:"tuple"`
	Probs     map[string]float64 `json:"probs,omitempty"`
	Default   float64            `json:"default,omitempty"`
	UseCore   bool               `json:"use_core,omitempty"`
	MCSamples int                `json:"mc_samples,omitempty"`
	Seed      int64              `json:"seed,omitempty"`
}

func (s *Server) handleProb(w http.ResponseWriter, r *http.Request) error {
	var req probReq
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	u, err := parseUnion(req.Query)
	if err != nil {
		return err
	}
	p, err := s.eng.Probability(r.Context(), req.Instance, u, db.Tuple(req.Tuple), engine.ProbOpts{
		Probs:     req.Probs,
		Default:   req.Default,
		UseCore:   req.UseCore,
		MCSamples: req.MCSamples,
		Seed:      req.Seed,
	})
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{"probability": p})
	return nil
}

type trustReq struct {
	Instance string             `json:"instance"`
	Query    string             `json:"query"`
	Tuple    []string           `json:"tuple"`
	Values   map[string]float64 `json:"values,omitempty"`
	Default  float64            `json:"default,omitempty"`
	// Mode is "cost" (tropical, default) or "confidence" (Viterbi).
	Mode    string `json:"mode,omitempty"`
	UseCore bool   `json:"use_core,omitempty"`
}

func (s *Server) handleTrust(w http.ResponseWriter, r *http.Request) error {
	var req trustReq
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	u, err := parseUnion(req.Query)
	if err != nil {
		return err
	}
	switch req.Mode {
	case "", "cost", "confidence":
	default:
		return badRequest("mode must be \"cost\" or \"confidence\", got %q", req.Mode)
	}
	v, err := s.eng.Trust(r.Context(), req.Instance, u, db.Tuple(req.Tuple), engine.TrustOpts{
		Values:     req.Values,
		Default:    req.Default,
		Confidence: req.Mode == "confidence",
		UseCore:    req.UseCore,
	})
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{"mode": modeName(req.Mode), "value": v})
	return nil
}

func modeName(m string) string {
	if m == "" {
		return "cost"
	}
	return m
}

type deletionReq struct {
	Instance string   `json:"instance"`
	Query    string   `json:"query"`
	Deleted  []string `json:"deleted"`
}

func (s *Server) handleDeletion(w http.ResponseWriter, r *http.Request) error {
	var req deletionReq
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	u, err := parseUnion(req.Query)
	if err != nil {
		return err
	}
	out, err := s.eng.Deletion(r.Context(), req.Instance, u, req.Deleted)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"survivors": tuplesOut(out.Survivors),
		"lost":      tuplesOut(out.Lost),
	})
	return nil
}

// --- cluster endpoints ---

// handleGeneration serves GET /gen/{id}: the instance's generation counter,
// the coherence token the cluster router validates cached results against.
// Faults cold instances in rather than trusting a possibly-stale stub
// version — correctness of cache validation beats keeping the tier cold.
func (s *Server) handleGeneration(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	gen, err := s.eng.Generation(id)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{"instance": id, "generation": gen})
	return nil
}

// handleTopology serves GET /topology: ring version plus the node list with
// health, the router's source of truth after a 409 stale-ring rejection.
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) error {
	if s.topo == nil {
		return &apiError{status: http.StatusConflict, msg: "this node is not clustered"}
	}
	writeJSON(w, http.StatusOK, s.topo.Info())
	return nil
}

type handoffReq struct {
	Instance string `json:"instance"`
}

func decodeHandoff(r *http.Request) (string, error) {
	var req handoffReq
	if err := decodeJSON(r, &req); err != nil {
		return "", err
	}
	if req.Instance == "" {
		return "", badRequest("missing instance")
	}
	return req.Instance, nil
}

// handleRelease serves POST /admin/release: snapshot the instance to the
// shared cold tier and forget it locally, the donor half of a rebalance.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) error {
	id, err := decodeHandoff(r)
	if err != nil {
		return err
	}
	if err := s.eng.ReleaseInstance(r.Context(), id); err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{"released": id})
	return nil
}

// handleAdopt serves POST /admin/adopt: register a released blob from the
// shared cold tier as a local cold instance, the recipient half.
func (s *Server) handleAdopt(w http.ResponseWriter, r *http.Request) error {
	id, err := decodeHandoff(r)
	if err != nil {
		return err
	}
	if err := s.eng.AdoptInstance(r.Context(), id); err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{"adopted": id})
	return nil
}

// --- operational endpoints ---

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) error {
	return s.serveSnapshot(w, false)
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) error {
	return s.serveSnapshot(w, true)
}

func (s *Server) serveSnapshot(w http.ResponseWriter, compact bool) error {
	var (
		stats persist.SnapshotStats
		err   error
	)
	if compact {
		stats, err = s.eng.Compact()
	} else {
		stats, err = s.eng.Snapshot()
	}
	switch {
	case errors.Is(err, engine.ErrNoPersistence):
		// The operator asked a memory-only deployment to persist: a
		// configuration conflict, not a malformed request.
		return &apiError{status: http.StatusConflict, msg: err.Error()}
	case err != nil:
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":           stats.Shards,
		"instances":        stats.Instances,
		"bytes":            stats.Bytes,
		"compacted":        stats.Compacted,
		"duration_seconds": stats.Duration.Seconds(),
	})
	return nil
}

type evictReq struct {
	Instance string `json:"instance"`
}

// handleEvict serves POST /admin/evict: snapshot one instance to the cold
// backend and release its RAM copy. 409 without a snapshot backend, 404
// for an unknown id; evicting an already-cold instance succeeds idempotently.
func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) error {
	var req evictReq
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	if req.Instance == "" {
		return badRequest("missing instance")
	}
	if err := s.eng.EvictInstance(req.Instance); err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{"evicted": req.Instance})
	return nil
}

// handleResidency serves GET /admin/residency: the resident/cold split with
// per-instance bytes and idle ages. Deliberately side-effect free — it
// never faults anything in, so operators (and the crash tests) can observe
// coldness without destroying it.
func (s *Server) handleResidency(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, s.eng.Residency())
	return nil
}

// handleCacheStats serves GET /admin/cache: result-cache totals, the
// configured per-instance bounds, and per-instance occupancy with the
// generation each instance is at.
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, s.eng.ResultCacheStatsNow())
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.eng.Metrics().Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.eng.Metrics().WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"instances": s.eng.InstanceCount(),
		"durable":   s.eng.Durable(),
	})
}
