// Package tier is the tiered-storage layer of the provmind service: cold
// snapshot backends and the residency bookkeeping the engine uses to decide
// which instances stay in RAM.
//
// A SnapshotBackend stores one opaque blob per instance — the byte-exact
// Envelope v2 snapshot the persist layer already writes — so an idle
// instance can be evicted from memory and rebuilt on first touch with no
// new serialization machinery. Two implementations ship: a local
// filesystem layout (FSBackend) and an S3-style object store
// (ObjectBackend) speaking HTTP against a MinIO-compatible endpoint, which
// bounds instance count by storage instead of RAM.
//
// The Tracker is a byte-budgeted LRU over resident instances: the engine
// touches it on every lookup, resizes it on ingest, and asks it for
// eviction victims when the resident set exceeds its budget or an instance
// has idled past its cold-after deadline.
package tier

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// ErrNotFound is returned (wrapped) by Get for an id with no stored blob.
// It wraps fs.ErrNotExist so callers that cannot import this package (the
// persist replay path takes a structural ColdStore) can still detect a
// miss with errors.Is(err, fs.ErrNotExist).
var ErrNotFound = fmt.Errorf("tier: snapshot not found: %w", fs.ErrNotExist)

// SnapshotBackend stores per-instance cold snapshot blobs. Implementations
// must be safe for concurrent use; blobs are opaque to the backend. Put
// overwrites, Delete of an absent id is not an error (deletes are GC), and
// List returns instance ids, not storage keys.
type SnapshotBackend interface {
	Put(ctx context.Context, id string, data []byte) error
	Get(ctx context.Context, id string) ([]byte, error)
	Delete(ctx context.Context, id string) error
	List(ctx context.Context) ([]string, error)
	// String describes the backend for startup logs ("fs:/var/…", "s3:…").
	String() string
}

// StatBackend is an optional SnapshotBackend extension: a cheap existence
// check without fetching the blob. The engine's cluster adopt-on-miss path
// uses it to answer "is this a real instance somewhere in the shared cold
// tier, or a typo?" without paying a full Get for every unknown id.
// Backends that don't implement it fall back to Get.
type StatBackend interface {
	Exists(ctx context.Context, id string) (bool, error)
}

// Exists reports whether a blob exists for id, using the backend's
// StatBackend fast path when available and a full Get otherwise.
func Exists(ctx context.Context, b SnapshotBackend, id string) (bool, error) {
	if sb, ok := b.(StatBackend); ok {
		return sb.Exists(ctx, id)
	}
	_, err := b.Get(ctx, id)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// idPat restricts instance ids embedded in storage keys: engine ids are
// "i<n>", but the backends accept anything path- and key-safe so tests and
// future id schemes keep working. Rejecting the rest keeps a hostile id
// from escaping the backend's namespace ("../../etc" is not a key).
var idPat = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// keyPrefix/keySuffix frame an instance id into a blob name. The prefix
// keeps instance blobs distinguishable from anything else sharing the
// directory or bucket; the suffix matches the persist shard snapshots'
// extension because the content is the same envelope format.
const (
	keyPrefix = "inst-"
	keySuffix = ".snap"
)

// BlobName returns the storage key for an instance id, or an error for ids
// that are not key-safe.
func BlobName(id string) (string, error) {
	if !idPat.MatchString(id) {
		return "", fmt.Errorf("tier: instance id %q is not storage-safe", id)
	}
	return keyPrefix + id + keySuffix, nil
}

// idFromBlobName inverts BlobName; ok is false for foreign keys.
func idFromBlobName(name string) (string, bool) {
	if !strings.HasPrefix(name, keyPrefix) || !strings.HasSuffix(name, keySuffix) {
		return "", false
	}
	id := name[len(keyPrefix) : len(name)-len(keySuffix)]
	if id == "" || !idPat.MatchString(id) {
		return "", false
	}
	return id, true
}

// FSBackend stores blobs as files in one directory — the default cold tier
// when provmind runs with a data directory. Writes are atomic
// (tmp+rename+fsync) so a crash mid-evict leaves either the old blob or
// the new one, never a torn file; the engine's recovery GC cleans up
// whichever half-state remains.
type FSBackend struct {
	dir string
}

// NewFSBackend creates the directory if needed and returns the backend.
func NewFSBackend(dir string) (*FSBackend, error) {
	if dir == "" {
		return nil, errors.New("tier: empty cold-snapshot directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tier: create cold dir: %w", err)
	}
	return &FSBackend{dir: dir}, nil
}

// Dir returns the backing directory.
func (b *FSBackend) Dir() string { return b.dir }

// String implements SnapshotBackend.
func (b *FSBackend) String() string { return "fs:" + b.dir }

// Put implements SnapshotBackend with an atomic write.
func (b *FSBackend) Put(_ context.Context, id string, data []byte) error {
	name, err := BlobName(id)
	if err != nil {
		return err
	}
	path := filepath.Join(b.dir, name)
	if err := writeFileAtomic(path, data); err != nil {
		return fmt.Errorf("tier: write %s: %w", path, err)
	}
	return nil
}

// Get implements SnapshotBackend; a missing blob is ErrNotFound.
func (b *FSBackend) Get(_ context.Context, id string) ([]byte, error) {
	name, err := BlobName(id)
	if err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(filepath.Join(b.dir, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return raw, err
}

// Exists implements StatBackend with a stat, never reading blob bytes.
func (b *FSBackend) Exists(_ context.Context, id string) (bool, error) {
	name, err := BlobName(id)
	if err != nil {
		return false, err
	}
	_, err = os.Stat(filepath.Join(b.dir, name))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Delete implements SnapshotBackend; deleting an absent blob succeeds.
func (b *FSBackend) Delete(_ context.Context, id string) error {
	name, err := BlobName(id)
	if err != nil {
		return err
	}
	err = os.Remove(filepath.Join(b.dir, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// List implements SnapshotBackend, returning ids sorted ascending.
func (b *FSBackend) List(_ context.Context) ([]string, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, fmt.Errorf("tier: list %s: %w", b.dir, err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if id, ok := idFromBlobName(e.Name()); ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// writeFileAtomic mirrors the persist layer's crash-safe file write:
// tmp+rename, with file and directory fsyncs.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
