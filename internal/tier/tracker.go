package tier

import (
	"container/list"
	"sync"
	"time"
)

// Tracker is the byte-budgeted LRU over resident instances. The engine
// Adds an instance when it becomes resident, Touches it on every access,
// SetBytes it after each ingest batch, and Removes it on evict or drop.
// VictimsOver answers "which instances should go cold now" — least
// recently used first — under two pressures: total resident bytes above
// the budget, and per-instance idle time beyond a cold-after deadline.
//
// The Tracker only *selects* victims; the engine owns the actual eviction
// (fence, snapshot, registry transition), so a selected victim that turns
// out to be busy is simply not removed and stays tracked.
type Tracker struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64
}

type trackerItem struct {
	id       string
	bytes    int64
	lastUsed time.Time
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{ll: list.New(), items: map[string]*list.Element{}}
}

// Add registers an instance as resident with its current size, marking it
// most recently used. Adding an existing id updates it in place.
func (t *Tracker) Add(id string, bytes int64, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[id]; ok {
		it := el.Value.(*trackerItem)
		t.bytes += bytes - it.bytes
		it.bytes = bytes
		it.lastUsed = now
		t.ll.MoveToFront(el)
		return
	}
	t.items[id] = t.ll.PushFront(&trackerItem{id: id, bytes: bytes, lastUsed: now})
	t.bytes += bytes
}

// Touch marks an instance most recently used. Unknown ids are ignored
// (the instance may be mid-eviction; the caller's flight lock sorts it out).
func (t *Tracker) Touch(id string, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[id]; ok {
		el.Value.(*trackerItem).lastUsed = now
		t.ll.MoveToFront(el)
	}
}

// SetBytes updates an instance's size without changing its recency.
func (t *Tracker) SetBytes(id string, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[id]; ok {
		it := el.Value.(*trackerItem)
		t.bytes += bytes - it.bytes
		it.bytes = bytes
	}
}

// Remove forgets an instance (evicted or dropped).
func (t *Tracker) Remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[id]; ok {
		t.bytes -= el.Value.(*trackerItem).bytes
		t.ll.Remove(el)
		delete(t.items, id)
	}
}

// Bytes reports total tracked resident bytes.
func (t *Tracker) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes
}

// Len reports the number of tracked instances.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.items)
}

// IdleSince reports an instance's last-used time; ok is false if untracked.
func (t *Tracker) IdleSince(id string) (time.Time, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[id]; ok {
		return el.Value.(*trackerItem).lastUsed, true
	}
	return time.Time{}, false
}

// VictimsOver selects eviction victims, least recently used first:
// instances idle since before deadline (skipped when deadline is zero),
// plus — regardless of idleness — enough further instances to bring
// tracked bytes within budget (skipped when budget <= 0). Budget pressure
// always leaves at least one instance resident — evicting the sole
// instance a workload is actively using would just thrash — but the idle
// deadline applies to the last one too: an instance nobody has touched
// since the deadline has no user to thrash.
func (t *Tracker) VictimsOver(budget int64, deadline time.Time) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var victims []string
	remaining := t.bytes
	left := len(t.items)
	for el := t.ll.Back(); el != nil; el = el.Prev() {
		it := el.Value.(*trackerItem)
		overBudget := budget > 0 && remaining > budget && left > 1
		idle := !deadline.IsZero() && it.lastUsed.Before(deadline)
		if !overBudget && !idle {
			// Recency order makes stopping safe: fresher entries have
			// later lastUsed (so none is idle) and remaining only shrinks
			// as victims accrue (so the budget stays satisfied).
			break
		}
		victims = append(victims, it.id)
		remaining -= it.bytes
		left--
	}
	return victims
}

// Entry is a point-in-time view of one tracked instance, for /admin/residency.
type Entry struct {
	ID       string
	Bytes    int64
	LastUsed time.Time
}

// Snapshot returns all tracked entries, most recently used first.
func (t *Tracker) Snapshot() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Entry, 0, len(t.items))
	for el := t.ll.Front(); el != nil; el = el.Next() {
		it := el.Value.(*trackerItem)
		out = append(out, Entry{ID: it.id, Bytes: it.bytes, LastUsed: it.lastUsed})
	}
	return out
}
