package tier

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// backendContract exercises the SnapshotBackend contract shared by both
// implementations.
func backendContract(t *testing.T, b SnapshotBackend) {
	t.Helper()
	ctx := context.Background()

	if _, err := b.Get(ctx, "i1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get of absent blob: want ErrNotFound, got %v", err)
	}
	if err := b.Delete(ctx, "i1"); err != nil {
		t.Fatalf("Delete of absent blob: %v", err)
	}

	if err := b.Put(ctx, "i1", []byte("one")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := b.Put(ctx, "i2", []byte("two")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := b.Get(ctx, "i1")
	if err != nil || string(got) != "one" {
		t.Fatalf("Get i1 = %q, %v; want \"one\"", got, err)
	}

	// Overwrite.
	if err := b.Put(ctx, "i1", []byte("one-v2")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	got, err = b.Get(ctx, "i1")
	if err != nil || string(got) != "one-v2" {
		t.Fatalf("Get after overwrite = %q, %v; want \"one-v2\"", got, err)
	}

	ids, err := b.List(ctx)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if want := []string{"i1", "i2"}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("List = %v, want %v", ids, want)
	}

	if err := b.Delete(ctx, "i1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := b.Get(ctx, "i1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: want ErrNotFound, got %v", err)
	}
	ids, err = b.List(ctx)
	if err != nil || !reflect.DeepEqual(ids, []string{"i2"}) {
		t.Fatalf("List after delete = %v, %v; want [i2]", ids, err)
	}

	// Unsafe ids must be rejected, not turned into paths/keys.
	if err := b.Put(ctx, "../escape", []byte("x")); err == nil {
		t.Fatal("Put with path-traversal id succeeded")
	}
	if _, err := b.Get(ctx, "a/b"); err == nil {
		t.Fatal("Get with slash id succeeded")
	}
}

func TestFSBackendContract(t *testing.T) {
	b, err := NewFSBackend(filepath.Join(t.TempDir(), "cold"))
	if err != nil {
		t.Fatal(err)
	}
	backendContract(t, b)
}

func TestFSBackendListIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFSBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put(context.Background(), "i7", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Foreign files, a tmp leftover from a crashed Put, and a subdir.
	for _, name := range []string{"meta.json", "inst-i9.snap.tmp", "wal-0.log"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "inst-sub.snap"), 0o755); err != nil {
		t.Fatal(err)
	}
	ids, err := b.List(context.Background())
	if err != nil || !reflect.DeepEqual(ids, []string{"i7"}) {
		t.Fatalf("List = %v, %v; want [i7]", ids, err)
	}
}

func newObjectBackend(t *testing.T, prefix string, signed bool) (*ObjectBackend, *FakeObjectStore) {
	t.Helper()
	fake := NewFakeObjectStore("provmind")
	srv := httptest.NewServer(fake)
	t.Cleanup(srv.Close)
	cfg := ObjectConfig{
		Endpoint: srv.URL,
		Bucket:   "provmind",
		Prefix:   prefix,
		Client:   srv.Client(),
	}
	if signed {
		cfg.AccessKey = "testkey"
		cfg.SecretKey = "testsecret"
	}
	b, err := NewObjectBackend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b, fake
}

func TestObjectBackendContract(t *testing.T) {
	b, _ := newObjectBackend(t, "", true)
	backendContract(t, b)
}

func TestObjectBackendContractWithPrefix(t *testing.T) {
	b, fake := newObjectBackend(t, "cold/blobs", false)
	backendContract(t, b)
	// The prefix must actually namespace the keys.
	if err := b.Put(context.Background(), "i5", []byte("x")); err != nil {
		t.Fatal(err)
	}
	fake.mu.Lock()
	_, ok := fake.objects["provmind"]["cold/blobs/inst-i5.snap"]
	fake.mu.Unlock()
	if !ok {
		t.Fatal("blob not stored under configured prefix")
	}
}

func TestObjectBackendListPagination(t *testing.T) {
	b, fake := newObjectBackend(t, "", true)
	fake.PageSize = 3
	ctx := context.Background()
	var want []string
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("i%02d", i)
		want = append(want, id)
		if err := b.Put(ctx, id, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := b.List(ctx)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("List across pages = %v, want %v", ids, want)
	}
}

func TestObjectBackendWrongBucket(t *testing.T) {
	fake := NewFakeObjectStore("provmind")
	srv := httptest.NewServer(fake)
	defer srv.Close()
	b, err := NewObjectBackend(ObjectConfig{Endpoint: srv.URL, Bucket: "nonexistent", Client: srv.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put(context.Background(), "i1", []byte("x")); err == nil {
		t.Fatal("Put into missing bucket succeeded")
	}
}

// TestSigV4KnownVector checks the signature computation against a vector
// computed with the AWS reference implementation (empty-payload GET).
func TestSigV4KnownVector(t *testing.T) {
	cfg := ObjectConfig{
		Endpoint:  "http://s3.example.com",
		Bucket:    "bkt",
		Region:    "us-east-1",
		AccessKey: "AKIDEXAMPLE",
		SecretKey: "wJalrXUtnFEMI/K7MDENG+bPxRfiCYEXAMPLEKEY",
		now:       func() time.Time { return time.Date(2015, 8, 30, 12, 36, 0, 0, time.UTC) },
	}
	b, err := NewObjectBackend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, "http://s3.example.com/bkt/inst-i1.snap", nil)
	b.sign(req, nil)

	if got := req.Header.Get("x-amz-date"); got != "20150830T123600Z" {
		t.Fatalf("x-amz-date = %q", got)
	}
	// Empty-payload SHA-256 is a well-known constant.
	const emptySHA = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
	if got := req.Header.Get("x-amz-content-sha256"); got != emptySHA {
		t.Fatalf("x-amz-content-sha256 = %q", got)
	}
	auth := req.Header.Get("Authorization")
	wantCred := "Credential=AKIDEXAMPLE/20150830/us-east-1/s3/aws4_request"
	wantHeaders := "SignedHeaders=host;x-amz-content-sha256;x-amz-date"
	for _, frag := range []string{"AWS4-HMAC-SHA256", wantCred, wantHeaders, "Signature="} {
		if !strings.Contains(auth, frag) {
			t.Fatalf("Authorization missing %q: %s", frag, auth)
		}
	}
	// Determinism: signing the same request twice must agree.
	req2, _ := http.NewRequest(http.MethodGet, "http://s3.example.com/bkt/inst-i1.snap", nil)
	b.sign(req2, nil)
	if req2.Header.Get("Authorization") != auth {
		t.Fatal("signature not deterministic")
	}
}

func TestBlobNameRoundTrip(t *testing.T) {
	name, err := BlobName("i42")
	if err != nil || name != "inst-i42.snap" {
		t.Fatalf("BlobName = %q, %v", name, err)
	}
	id, ok := idFromBlobName(name)
	if !ok || id != "i42" {
		t.Fatalf("idFromBlobName = %q, %v", id, ok)
	}
	for _, bad := range []string{"", "a/b", "../x", "a b", "i1\n"} {
		if _, err := BlobName(bad); err == nil {
			t.Fatalf("BlobName(%q) succeeded", bad)
		}
	}
	for _, foreign := range []string{"meta.json", "inst-.snap", "inst-a/b.snap", "shard-0.snap"} {
		if _, ok := idFromBlobName(foreign); ok {
			t.Fatalf("idFromBlobName(%q) accepted", foreign)
		}
	}
}

func TestTrackerLRUAndBytes(t *testing.T) {
	tr := NewTracker()
	t0 := time.Unix(1000, 0)
	tr.Add("i1", 100, t0)
	tr.Add("i2", 200, t0.Add(time.Second))
	tr.Add("i3", 300, t0.Add(2*time.Second))
	if got := tr.Bytes(); got != 600 {
		t.Fatalf("Bytes = %d, want 600", got)
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}

	// i1 becomes most recent; i2 is now LRU.
	tr.Touch("i1", t0.Add(3*time.Second))
	if v := tr.VictimsOver(450, time.Time{}); !reflect.DeepEqual(v, []string{"i2"}) {
		t.Fatalf("VictimsOver(450) = %v, want [i2]", v)
	}
	// Need to free more: next LRU after i2 is i3.
	if v := tr.VictimsOver(150, time.Time{}); !reflect.DeepEqual(v, []string{"i2", "i3"}) {
		t.Fatalf("VictimsOver(150) = %v, want [i2 i3]", v)
	}
	// Budget zero means no byte pressure.
	if v := tr.VictimsOver(0, time.Time{}); v != nil {
		t.Fatalf("VictimsOver(0) = %v, want nil", v)
	}

	tr.SetBytes("i2", 50)
	if got := tr.Bytes(); got != 450 {
		t.Fatalf("Bytes after SetBytes = %d, want 450", got)
	}
	// SetBytes must not promote: i2 is still LRU.
	if v := tr.VictimsOver(449, time.Time{}); v[0] != "i2" {
		t.Fatalf("first victim after SetBytes = %v, want i2", v)
	}

	tr.Remove("i2")
	if got, want := tr.Bytes(), int64(400); got != want {
		t.Fatalf("Bytes after Remove = %d, want %d", got, want)
	}
	if _, ok := tr.IdleSince("i2"); ok {
		t.Fatal("IdleSince(removed) reported ok")
	}
}

func TestTrackerIdleDeadline(t *testing.T) {
	tr := NewTracker()
	t0 := time.Unix(1000, 0)
	tr.Add("old", 10, t0)
	tr.Add("mid", 10, t0.Add(10*time.Second))
	tr.Add("new", 10, t0.Add(20*time.Second))

	// Everything idle before t0+15s goes cold regardless of budget.
	v := tr.VictimsOver(0, t0.Add(15*time.Second))
	if !reflect.DeepEqual(v, []string{"old", "mid"}) {
		t.Fatalf("idle victims = %v, want [old mid]", v)
	}
	// The idle deadline applies to the last instance too: unlike budget
	// pressure, there is no active user to thrash.
	v = tr.VictimsOver(0, t0.Add(time.Hour))
	if !reflect.DeepEqual(v, []string{"old", "mid", "new"}) {
		t.Fatalf("idle victims (all idle) = %v, want all three", v)
	}
}

func TestTrackerKeepsLastResident(t *testing.T) {
	tr := NewTracker()
	tr.Add("only", 1000, time.Unix(1000, 0))
	if v := tr.VictimsOver(1, time.Time{}); v != nil {
		t.Fatalf("VictimsOver with one instance = %v, want nil", v)
	}
}

func TestTrackerSnapshotOrder(t *testing.T) {
	tr := NewTracker()
	t0 := time.Unix(1000, 0)
	tr.Add("a", 1, t0)
	tr.Add("b", 2, t0.Add(time.Second))
	tr.Touch("a", t0.Add(2*time.Second))
	snap := tr.Snapshot()
	if len(snap) != 2 || snap[0].ID != "a" || snap[1].ID != "b" {
		t.Fatalf("Snapshot order = %+v, want a then b", snap)
	}
	if snap[0].Bytes != 1 || !snap[0].LastUsed.Equal(t0.Add(2*time.Second)) {
		t.Fatalf("Snapshot entry = %+v", snap[0])
	}
}
