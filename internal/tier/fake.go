package tier

import (
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// FakeObjectStore is an in-memory S3-compatible HTTP handler implementing
// just enough of the protocol for ObjectBackend: path-style object
// PUT/GET/DELETE and ListObjectsV2 with prefix and continuation-token
// pagination. It backs the object-store tests and the e2e harness without
// needing a real MinIO, and lives outside _test files so cmd tests can run
// it too. It does not verify signatures — signing correctness is covered
// separately — but it does reject requests missing x-amz-content-sha256,
// which catches backends that forget to set it.
type FakeObjectStore struct {
	mu      sync.Mutex
	objects map[string]map[string][]byte // bucket → key → blob
	// PageSize caps keys per list page (0 = the S3 default of 1000); tests
	// lower it to force pagination.
	PageSize int
}

// NewFakeObjectStore returns a fake with the given buckets pre-created.
func NewFakeObjectStore(buckets ...string) *FakeObjectStore {
	s := &FakeObjectStore{objects: map[string]map[string][]byte{}}
	for _, b := range buckets {
		s.objects[b] = map[string][]byte{}
	}
	return s
}

// Len reports the number of objects in a bucket.
func (s *FakeObjectStore) Len(bucket string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects[bucket])
}

// ServeHTTP implements http.Handler.
func (s *FakeObjectStore) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("x-amz-content-sha256") == "" {
		http.Error(w, "missing x-amz-content-sha256", http.StatusBadRequest)
		return
	}
	bucket, key := splitPath(r.URL.Path)
	if bucket == "" {
		http.Error(w, "no bucket in path", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	objs, ok := s.objects[bucket]
	if !ok {
		http.Error(w, "NoSuchBucket", http.StatusNotFound)
		return
	}
	switch {
	case key == "" && r.Method == http.MethodGet:
		s.list(w, r, objs)
	case r.Method == http.MethodPut:
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		objs[key] = data
		w.WriteHeader(http.StatusOK)
	case r.Method == http.MethodGet:
		data, ok := objs[key]
		if !ok {
			http.Error(w, "NoSuchKey", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.Write(data) //nolint:errcheck
	case r.Method == http.MethodHead:
		data, ok := objs[key]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.WriteHeader(http.StatusOK)
	case r.Method == http.MethodDelete:
		delete(objs, key)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not supported", http.StatusMethodNotAllowed)
	}
}

// list renders a ListObjectsV2 page. Keys sort lexicographically, matching
// S3; the continuation token is simply the last key of the previous page.
func (s *FakeObjectStore) list(w http.ResponseWriter, r *http.Request, objs map[string][]byte) {
	if r.URL.Query().Get("list-type") != "2" {
		http.Error(w, "only list-type=2 supported", http.StatusBadRequest)
		return
	}
	prefix := r.URL.Query().Get("prefix")
	after := r.URL.Query().Get("continuation-token")
	pageSize := s.PageSize
	if pageSize <= 0 {
		pageSize = 1000
	}
	var keys []string
	for k := range objs {
		if strings.HasPrefix(k, prefix) && k > after {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	truncated := len(keys) > pageSize
	if truncated {
		keys = keys[:pageSize]
	}
	page := listResult{IsTruncated: truncated}
	if truncated {
		page.NextContinuationToken = keys[len(keys)-1]
	}
	for _, k := range keys {
		page.Contents = append(page.Contents, struct {
			Key string `xml:"Key"`
		}{Key: k})
	}
	w.Header().Set("Content-Type", "application/xml")
	fmt.Fprint(w, xml.Header)
	if err := xml.NewEncoder(w).Encode(page); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// splitPath splits "/bucket/key/with/slashes" into its two halves.
func splitPath(p string) (bucket, key string) {
	p = strings.TrimPrefix(p, "/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i], p[i+1:]
	}
	return p, ""
}
