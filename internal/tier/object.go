package tier

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"
)

// ObjectConfig configures an S3-style object-store backend. Endpoint is a
// full base URL ("http://127.0.0.1:9000"); requests are path-style
// (endpoint/bucket/key), the addressing MinIO serves out of the box. Empty
// AccessKey leaves requests unsigned, for stores with anonymous access.
type ObjectConfig struct {
	Endpoint  string
	Bucket    string
	Prefix    string // key prefix inside the bucket, e.g. "provmind/cold"
	Region    string // SigV4 region; default "us-east-1"
	AccessKey string
	SecretKey string
	Client    *http.Client // default http.DefaultClient
	// now overrides the signing clock; tests only.
	now func() time.Time
}

// ObjectBackend implements SnapshotBackend over HTTP against an
// S3-compatible object store (MinIO, or S3 itself). It uses only the four
// operations the tier needs — PUT/GET/DELETE object and ListObjectsV2 —
// signed with AWS Signature v4, so no SDK dependency is required.
type ObjectBackend struct {
	cfg  ObjectConfig
	base *url.URL
}

// NewObjectBackend validates the configuration and returns the backend. It
// performs no network I/O; a bad endpoint surfaces on first use (and at
// startup via AdoptCold's List).
func NewObjectBackend(cfg ObjectConfig) (*ObjectBackend, error) {
	if cfg.Endpoint == "" {
		return nil, errors.New("tier: object backend needs an endpoint URL")
	}
	if cfg.Bucket == "" {
		return nil, errors.New("tier: object backend needs a bucket")
	}
	u, err := url.Parse(cfg.Endpoint)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("tier: invalid object endpoint %q", cfg.Endpoint)
	}
	if cfg.Region == "" {
		cfg.Region = "us-east-1"
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	cfg.Prefix = strings.Trim(cfg.Prefix, "/")
	return &ObjectBackend{cfg: cfg, base: u}, nil
}

// String implements SnapshotBackend.
func (b *ObjectBackend) String() string {
	s := "s3:" + b.cfg.Endpoint + "/" + b.cfg.Bucket
	if b.cfg.Prefix != "" {
		s += "/" + b.cfg.Prefix
	}
	return s
}

// key maps an instance id to its object key within the bucket.
func (b *ObjectBackend) key(id string) (string, error) {
	name, err := BlobName(id)
	if err != nil {
		return "", err
	}
	if b.cfg.Prefix != "" {
		return b.cfg.Prefix + "/" + name, nil
	}
	return name, nil
}

// objectURL builds the path-style URL for a key ("" addresses the bucket
// itself, for listing).
func (b *ObjectBackend) objectURL(key string, query url.Values) *url.URL {
	u := *b.base
	u.Path = strings.TrimSuffix(u.Path, "/") + "/" + b.cfg.Bucket
	if key != "" {
		u.Path += "/" + key
	}
	u.RawQuery = query.Encode()
	return &u
}

// Put implements SnapshotBackend.
func (b *ObjectBackend) Put(ctx context.Context, id string, data []byte) error {
	key, err := b.key(id)
	if err != nil {
		return err
	}
	resp, err := b.do(ctx, http.MethodPut, b.objectURL(key, nil), data)
	if err != nil {
		return fmt.Errorf("tier: put %s: %w", key, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("tier: put %s: %s", key, respError(resp))
	}
	return nil
}

// Get implements SnapshotBackend; a 404 is ErrNotFound.
func (b *ObjectBackend) Get(ctx context.Context, id string) ([]byte, error) {
	key, err := b.key(id)
	if err != nil {
		return nil, err
	}
	resp, err := b.do(ctx, http.MethodGet, b.objectURL(key, nil), nil)
	if err != nil {
		return nil, fmt.Errorf("tier: get %s: %w", key, err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		return io.ReadAll(resp.Body)
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	default:
		return nil, fmt.Errorf("tier: get %s: %s", key, respError(resp))
	}
}

// Exists implements StatBackend via a HEAD request.
func (b *ObjectBackend) Exists(ctx context.Context, id string) (bool, error) {
	key, err := b.key(id)
	if err != nil {
		return false, err
	}
	resp, err := b.do(ctx, http.MethodHead, b.objectURL(key, nil), nil)
	if err != nil {
		return false, fmt.Errorf("tier: head %s: %w", key, err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		// HEAD responses carry no body, so respError reduces to the status.
		return false, fmt.Errorf("tier: head %s: %s", key, resp.Status)
	}
}

// Delete implements SnapshotBackend; deleting an absent key succeeds (S3
// returns 204 either way, but tolerate 404 from laxer fakes).
func (b *ObjectBackend) Delete(ctx context.Context, id string) error {
	key, err := b.key(id)
	if err != nil {
		return err
	}
	resp, err := b.do(ctx, http.MethodDelete, b.objectURL(key, nil), nil)
	if err != nil {
		return fmt.Errorf("tier: delete %s: %w", key, err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNoContent, http.StatusNotFound:
		return nil
	default:
		return fmt.Errorf("tier: delete %s: %s", key, respError(resp))
	}
}

// listResult is the subset of the ListObjectsV2 response the backend reads.
type listResult struct {
	XMLName               xml.Name `xml:"ListBucketResult"`
	IsTruncated           bool     `xml:"IsTruncated"`
	NextContinuationToken string   `xml:"NextContinuationToken"`
	Contents              []struct {
		Key string `xml:"Key"`
	} `xml:"Contents"`
}

// List implements SnapshotBackend via ListObjectsV2, following
// continuation tokens so buckets beyond one page (1000 keys) list fully.
func (b *ObjectBackend) List(ctx context.Context) ([]string, error) {
	prefix := keyPrefix
	if b.cfg.Prefix != "" {
		prefix = b.cfg.Prefix + "/" + keyPrefix
	}
	var ids []string
	token := ""
	for {
		q := url.Values{}
		q.Set("list-type", "2")
		q.Set("prefix", prefix)
		if token != "" {
			q.Set("continuation-token", token)
		}
		resp, err := b.do(ctx, http.MethodGet, b.objectURL("", q), nil)
		if err != nil {
			return nil, fmt.Errorf("tier: list bucket %s: %w", b.cfg.Bucket, err)
		}
		if resp.StatusCode != http.StatusOK {
			err := fmt.Errorf("tier: list bucket %s: %s", b.cfg.Bucket, respError(resp))
			drain(resp)
			return nil, err
		}
		var page listResult
		err = xml.NewDecoder(resp.Body).Decode(&page)
		drain(resp)
		if err != nil {
			return nil, fmt.Errorf("tier: list bucket %s: bad XML: %w", b.cfg.Bucket, err)
		}
		for _, obj := range page.Contents {
			name := obj.Key
			if b.cfg.Prefix != "" {
				name = strings.TrimPrefix(name, b.cfg.Prefix+"/")
			}
			if id, ok := idFromBlobName(name); ok {
				ids = append(ids, id)
			}
		}
		if !page.IsTruncated || page.NextContinuationToken == "" {
			break
		}
		token = page.NextContinuationToken
	}
	sort.Strings(ids)
	return ids, nil
}

// do issues one signed request.
func (b *ObjectBackend) do(ctx context.Context, method string, u *url.URL, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, u.String(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.ContentLength = int64(len(body))
	b.sign(req, body)
	return b.cfg.Client.Do(req)
}

// drain discards and closes a response body so the connection is reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
}

// respError summarizes a non-2xx response for error messages.
func respError(resp *http.Response) string {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(raw))
	if msg == "" {
		return resp.Status
	}
	return resp.Status + ": " + msg
}

// sign adds AWS Signature Version 4 authentication headers. With no access
// key configured the request goes out anonymous (x-amz-content-sha256 is
// still set; MinIO requires it even unsigned in some configurations).
func (b *ObjectBackend) sign(req *http.Request, body []byte) {
	payloadHash := sha256.Sum256(body)
	payloadHex := hex.EncodeToString(payloadHash[:])
	req.Header.Set("x-amz-content-sha256", payloadHex)
	if b.cfg.AccessKey == "" {
		return
	}
	now := b.cfg.now().UTC()
	amzDate := now.Format("20060102T150405Z")
	dateStamp := now.Format("20060102")
	req.Header.Set("x-amz-date", amzDate)

	// Canonical request. Only the headers we actually send are signed:
	// host, x-amz-content-sha256, x-amz-date.
	signedHeaders := "host;x-amz-content-sha256;x-amz-date"
	canonicalHeaders := "host:" + req.URL.Host + "\n" +
		"x-amz-content-sha256:" + payloadHex + "\n" +
		"x-amz-date:" + amzDate + "\n"
	canonicalRequest := strings.Join([]string{
		req.Method,
		canonicalURI(req.URL),
		canonicalQuery(req.URL),
		canonicalHeaders,
		signedHeaders,
		payloadHex,
	}, "\n")

	scope := dateStamp + "/" + b.cfg.Region + "/s3/aws4_request"
	crHash := sha256.Sum256([]byte(canonicalRequest))
	stringToSign := strings.Join([]string{
		"AWS4-HMAC-SHA256",
		amzDate,
		scope,
		hex.EncodeToString(crHash[:]),
	}, "\n")

	kDate := hmacSHA256([]byte("AWS4"+b.cfg.SecretKey), dateStamp)
	kRegion := hmacSHA256(kDate, b.cfg.Region)
	kService := hmacSHA256(kRegion, "s3")
	kSigning := hmacSHA256(kService, "aws4_request")
	signature := hex.EncodeToString(hmacSHA256(kSigning, stringToSign))

	req.Header.Set("Authorization", "AWS4-HMAC-SHA256 Credential="+
		b.cfg.AccessKey+"/"+scope+
		", SignedHeaders="+signedHeaders+
		", Signature="+signature)
}

func hmacSHA256(key []byte, msg string) []byte {
	m := hmac.New(sha256.New, key)
	m.Write([]byte(msg))
	return m.Sum(nil)
}

// canonicalURI percent-encodes the path per SigV4 (each segment
// URI-encoded, "/" preserved). Our keys only contain unreserved characters
// plus "/", so escaping is a near no-op but kept for correctness.
func canonicalURI(u *url.URL) string {
	if u.Path == "" {
		return "/"
	}
	segs := strings.Split(u.Path, "/")
	for i, s := range segs {
		segs[i] = awsEscape(s)
	}
	return strings.Join(segs, "/")
}

// canonicalQuery sorts parameters by key and encodes per SigV4.
func canonicalQuery(u *url.URL) string {
	q := u.Query()
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		vs := q[k]
		sort.Strings(vs)
		for _, v := range vs {
			parts = append(parts, awsEscape(k)+"="+awsEscape(v))
		}
	}
	return strings.Join(parts, "&")
}

// awsEscape implements the SigV4 variant of URI encoding: unreserved
// characters (A–Z a–z 0–9 - . _ ~) pass through, everything else becomes
// %XX with uppercase hex — notably space is %20, never "+".
func awsEscape(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_', c == '~':
			sb.WriteByte(c)
		default:
			fmt.Fprintf(&sb, "%%%02X", c)
		}
	}
	return sb.String()
}
