package direct

import (
	"testing"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/minimize"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

func tableD6() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "c")
	d.MustAdd("R", "s5", "c", "a")
	return d
}

func table2() *db.Instance {
	d := db.NewInstance()
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "b")
	return d
}

func TestCoreUpToCoefficientsSection5Example(t *testing.T) {
	// pI of Q̂ over D̂ (Example 5.2) reduces to s1 + s2*s4*s5 up to
	// coefficients: supports are s1, s1*s2*s3 (dropped: contains s1) and
	// s2*s4*s5.
	p := semiring.MustParsePolynomial("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5")
	got := CoreUpToCoefficients(p)
	want := semiring.MustParsePolynomial("s1 + s2*s4*s5")
	if !got.Equal(want) {
		t.Errorf("CoreUpToCoefficients = %v, want %v", got, want)
	}
}

func TestCoreUpToCoefficientsDropsExponentsOnly(t *testing.T) {
	p := semiring.MustParsePolynomial("s1^2 + 5*s2^3*s3")
	got := CoreUpToCoefficients(p)
	want := semiring.MustParsePolynomial("s1 + s2*s3")
	if !got.Equal(want) {
		t.Errorf("CoreUpToCoefficients = %v, want %v", got, want)
	}
}

func TestCoreUpToCoefficientsZero(t *testing.T) {
	if !CoreUpToCoefficients(semiring.Zero).IsZero() {
		t.Error("core of 0 is 0")
	}
}

func TestCoreExactSection5Example(t *testing.T) {
	// Example 5.8: the exact core is s1 + 3*s2*s4*s5, the coefficient 3
	// being the automorphism count of the triangle adjunct.
	p := semiring.MustParsePolynomial("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5")
	got, err := CoreExact(p, tableD6(), db.Tuple{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := semiring.MustParsePolynomial("s1 + 3*s2*s4*s5")
	if !got.Equal(want) {
		t.Errorf("CoreExact = %v, want %v", got, want)
	}
}

func TestAutTriangle(t *testing.T) {
	k, err := Aut(semiring.NewMonomial("s2", "s4", "s5"), tableD6(), db.Tuple{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("Aut(s2*s4*s5) = %d, want 3", k)
	}
	k, err = Aut(semiring.NewMonomial("s1"), tableD6(), db.Tuple{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("Aut(s1) = %d, want 1", k)
	}
}

func TestReconstructAdjunct(t *testing.T) {
	q, err := ReconstructAdjunct(semiring.NewMonomial("s2", "s3"), table2(), db.Tuple{"a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 2 || len(q.Head.Args) != 1 {
		t.Fatalf("reconstructed = %v", q)
	}
	if !q.IsComplete() {
		t.Errorf("reconstructed adjunct must be complete: %v", q)
	}
	// The head variable is the one standing for value "a".
	if q.Head.Args[0].Const {
		t.Errorf("head should be a variable: %v", q.Head)
	}
}

func TestReconstructAdjunctWithConstants(t *testing.T) {
	// Value "a" is a query constant: it must stay constant.
	q, err := ReconstructAdjunct(semiring.NewMonomial("s2"), table2(), db.Tuple{"b"}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	// Fact s2 = R(a,b): expect atom R('a', v) and head ans(v).
	at := q.Atoms[0]
	if at.Args[0] != query.C("a") || at.Args[1].Const {
		t.Errorf("atom = %v, want R('a', v)", at)
	}
	if !q.HasDiseq(at.Args[1], query.C("a")) {
		t.Errorf("completion w.r.t. constants missing: %v", q)
	}
}

func TestReconstructAdjunctErrors(t *testing.T) {
	if _, err := ReconstructAdjunct(semiring.NewMonomial("zz"), table2(), db.Tuple{}, nil); err == nil {
		t.Error("unknown tag must fail")
	}
	if _, err := ReconstructAdjunct(semiring.NewMonomial("s1", "s1"), table2(), db.Tuple{}, nil); err == nil {
		t.Error("non-support monomial must fail")
	}
	// A head value that appears in no fact of the monomial is invalid.
	if _, err := ReconstructAdjunct(semiring.NewMonomial("s1"), table2(), db.Tuple{"zzz"}, nil); err == nil {
		t.Error("unsafe reconstructed head must fail")
	}
}

// TestTheorem51DirectEqualsMinProv is the headline correctness property of
// Section 5: for each query and database, the direct computation from
// P(t,Q,D) agrees with evaluating MinProv(Q), for every output tuple.
func TestTheorem51DirectEqualsMinProv(t *testing.T) {
	suite := []string{
		"ans(x) :- R(x,y), R(y,x)",
		"ans() :- R(x,y), R(y,z), R(z,x)",
		"ans() :- R(x,y), R(y,z), x != z",
		"ans(x) :- R(x,y), x != y",
		"ans(x,y) :- R(x,y), x != 'a', x != y",
	}
	dbs := []*db.Instance{table2(), tableD6()}
	for seed := int64(0); seed < 3; seed++ {
		d := db.NewInstance()
		g := db.NewGenerator(seed)
		g.RandomGraph(d, "R", 4, 8)
		dbs = append(dbs, d)
	}
	// Make sure constant 'a' can appear in generated instances too.
	da := db.NewInstance()
	da.MustAdd("R", "r1", "a", "d1")
	da.MustAdd("R", "r2", "d1", "a")
	da.MustAdd("R", "r3", "a", "a")
	dbs = append(dbs, da)

	for _, s := range suite {
		q := query.MustParse(s)
		u := query.Single(q)
		pm := minimize.MinProv(u)
		for di, d := range dbs {
			rq, err := eval.EvalUCQ(u, d)
			if err != nil {
				t.Fatal(err)
			}
			rpm, err := eval.EvalUCQ(pm, d)
			if err != nil {
				t.Fatal(err)
			}
			for _, ot := range rq.Tuples() {
				got, err := CoreExact(ot.Prov, d, ot.Tuple, q.Consts())
				if err != nil {
					t.Fatalf("CoreExact(%v): %v", ot.Prov, err)
				}
				want, _ := rpm.Lookup(ot.Tuple)
				if !got.Equal(want) {
					t.Errorf("query %v db %d tuple %v:\n direct  = %v\n minprov = %v\n from p  = %v",
						q, di, ot.Tuple, got, want, ot.Prov)
				}
			}
		}
	}
}

func TestTheorem62NonAbstractRejected(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "s", "a")
	d.MustAdd("R", "s", "b")
	p := semiring.MustParsePolynomial("s^2")
	if _, err := CoreExact(p, d, db.Tuple{"a"}, nil); err == nil {
		t.Error("CoreExact must refuse non-abstractly-tagged databases")
	}
}

func TestTheorem62Counterexample(t *testing.T) {
	// The two queries of the Theorem 6.2 proof have identical provenance on
	// the shared-tag database but different p-minimal provenance.
	d := db.NewInstance()
	d.MustAdd("R", "s", "a")
	d.MustAdd("R", "s", "b")
	q := query.MustParseUnion("ans(x) :- R(x), R(y), x != y")
	qp := query.MustParseUnion("ans(x) :- R(x), R(x)")
	tup := db.Tuple{"a"}
	p1, err := eval.Provenance(q, d, tup)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := eval.Provenance(qp, d, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Equal(p2) || !p1.Equal(semiring.MustParsePolynomial("s^2")) {
		t.Fatalf("both provenances should be s^2: %v vs %v", p1, p2)
	}
	m1, err := eval.Provenance(minimize.MinProv(q), d, tup)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := eval.Provenance(minimize.MinProv(qp), d, tup)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Equal(m2) {
		t.Errorf("Theorem 6.2: p-minimal provenances must differ, both = %v", m1)
	}
	if !m1.Equal(semiring.MustParsePolynomial("s^2")) {
		t.Errorf("P(t, MinProv(Q), D) = %v, want s^2", m1)
	}
	if !m2.Equal(semiring.MustParsePolynomial("s")) {
		t.Errorf("P(t, MinProv(Q'), D) = %v, want s", m2)
	}
}

func TestCoreSizeReduction(t *testing.T) {
	p := semiring.MustParsePolynomial("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5")
	orig, core := CoreSizeReduction(p)
	if orig != 21 { // 3 + 3*3 + 3*3
		t.Errorf("orig = %d, want 21", orig)
	}
	if core != 4 { // s1 + s2*s4*s5
		t.Errorf("core = %d, want 4", core)
	}
}
