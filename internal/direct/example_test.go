package direct_test

import (
	"fmt"

	"provmin/internal/db"
	"provmin/internal/direct"
	"provmin/internal/semiring"
)

func ExampleCoreUpToCoefficients() {
	// pI of the paper's Section 5 example (Q̂ over D̂).
	p := semiring.MustParsePolynomial("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5")
	fmt.Println(direct.CoreUpToCoefficients(p))
	// Output:
	// s1 + s2*s4*s5
}

func ExampleCoreExact() {
	d := db.NewInstance() // D̂, Table 6
	d.MustAdd("R", "s1", "a", "a")
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s3", "b", "a")
	d.MustAdd("R", "s4", "b", "c")
	d.MustAdd("R", "s5", "c", "a")
	p := semiring.MustParsePolynomial("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5")
	core, _ := direct.CoreExact(p, d, db.Tuple{}, nil)
	fmt.Println(core) // coefficient 3 = |Aut| of the triangle adjunct
	// Output:
	// s1 + 3*s2*s4*s5
}

func ExampleAut() {
	d := db.NewInstance()
	d.MustAdd("R", "s2", "a", "b")
	d.MustAdd("R", "s4", "b", "c")
	d.MustAdd("R", "s5", "c", "a")
	k, _ := direct.Aut(semiring.NewMonomial("s2", "s4", "s5"), d, db.Tuple{}, nil)
	fmt.Println(k)
	// Output:
	// 3
}
