package direct

import (
	"testing"

	"provmin/internal/db"
	"provmin/internal/eval"
	"provmin/internal/minimize"
	"provmin/internal/query"
)

func TestCoreResultEqualsMinProvResult(t *testing.T) {
	q := query.MustParse("ans(x) :- R(x,y), R(y,x)")
	u := query.Single(q)
	d := table2()
	res, err := eval.EvalUCQ(u, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CoreResult(res, d, q.Consts())
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.EvalUCQ(minimize.MinProv(u), d)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameAnnotated(want) {
		t.Errorf("CoreResult:\n%s\nwant MinProv result:\n%s", got, want)
	}
}

func TestCoreResultUpToCoefficients(t *testing.T) {
	q := query.MustParse("ans() :- R(x,y), R(y,z), R(z,x)")
	d := tableD6()
	res, err := eval.EvalCQ(q, d)
	if err != nil {
		t.Fatal(err)
	}
	got := CoreResultUpToCoefficients(res)
	p, _ := got.Lookup(db.Tuple{})
	// s1 + s2*s4*s5 with unit coefficients.
	if p.NumMonomials() != 2 || p.NumOccurrences() != 2 {
		t.Errorf("core up to coefficients = %v", p)
	}
	if got.TotalProvenanceSize() >= res.TotalProvenanceSize() {
		t.Error("core result should be smaller")
	}
}

func TestCoreResultRejectsNonAbstract(t *testing.T) {
	d := db.NewInstance()
	d.MustAdd("R", "s", "a")
	d.MustAdd("R", "s", "b")
	res, err := eval.EvalCQ(query.MustParse("ans(x) :- R(x)"), d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CoreResult(res, d, nil); err == nil {
		t.Error("CoreResult must refuse non-abstractly-tagged databases")
	}
}
