package direct

import (
	"provmin/internal/db"
	"provmin/internal/eval"
)

// CoreResult applies direct core computation to every tuple of an annotated
// result, producing the result the p-minimal query would have yielded —
// without knowing or rewriting the query. Exact coefficients require the
// (abstractly-tagged) database and the query's constants, per Theorem 5.1.
func CoreResult(res *eval.Result, d *db.Instance, consts []string) (*eval.Result, error) {
	out := eval.NewResult()
	for _, ot := range res.Tuples() {
		core, err := CoreExact(ot.Prov, d, ot.Tuple, consts)
		if err != nil {
			return nil, err
		}
		out.Add(ot.Tuple, core)
	}
	out.Finish()
	return out, nil
}

// CoreResultUpToCoefficients is the PTIME whole-result variant: every
// tuple's polynomial is replaced by its core up to coefficients, from the
// polynomials alone.
func CoreResultUpToCoefficients(res *eval.Result) *eval.Result {
	out := eval.NewResult()
	for _, ot := range res.Tuples() {
		out.Add(ot.Tuple, CoreUpToCoefficients(ot.Prov))
	}
	out.Finish()
	return out
}
