// Package direct implements Section 5 of the paper: computing the core
// provenance of an output tuple directly from its provenance polynomial,
// without rewriting or re-evaluating the query.
//
// Theorem 5.1 has two parts, both implemented here:
//
//  1. From the polynomial alone, the core is computable in PTIME up to the
//     number of occurrences of equal monomials (Corollary 5.6): drop
//     repeated variable occurrences inside each monomial, then drop every
//     monomial that strictly includes another monomial of the polynomial.
//  2. With the database D, the output tuple t and Const(Q) also available,
//     the exact coefficients are recovered (in time exponential in the
//     monomial size): the coefficient of a surviving monomial m equals the
//     number of automorphisms of the adjunct that produced it (Lemma 5.7),
//     and that adjunct can be reconstructed from the tuples named by m
//     without seeing the query (Lemma 5.9).
//
// Both computations assume an abstractly-tagged database; Theorem 6.2 shows
// the task is impossible otherwise, and CoreExact refuses such inputs.
package direct

import (
	"fmt"

	"provmin/internal/db"
	"provmin/internal/hom"
	"provmin/internal/query"
	"provmin/internal/semiring"
)

// CoreUpToCoefficients computes the PTIME part of Theorem 5.1: the core
// provenance of p with every coefficient normalized to 1. Step II's effect
// (Lemma 5.3) is modeled by taking each monomial's support; step III's
// effect (Lemma 5.5, Corollary 5.6) by dropping every monomial that strictly
// includes another monomial of the polynomial.
func CoreUpToCoefficients(p semiring.Polynomial) semiring.Polynomial {
	supports := map[string]semiring.Monomial{}
	for _, t := range p.Terms() {
		s := t.Monomial.Support()
		supports[s.Key()] = s
	}
	out := semiring.Zero
	for k, m := range supports {
		minimal := true
		for k2, n := range supports {
			if k2 != k && n.ProperlyDivides(m) {
				minimal = false
				break
			}
		}
		if minimal {
			out = out.AddMonomial(m, 1)
		}
	}
	return out
}

// CoreExact computes the exact core provenance of tuple t (Theorem 5.1 part
// 2): the minimal support monomials of p, each with coefficient Aut(m)
// computed from the database and the query's constants. The database must
// be abstractly tagged (Theorem 6.2 shows exactness is unattainable
// otherwise).
func CoreExact(p semiring.Polynomial, d *db.Instance, t db.Tuple, consts []string) (semiring.Polynomial, error) {
	if !d.IsAbstractlyTagged() {
		return semiring.Zero, fmt.Errorf("direct core computation requires an abstractly-tagged database (Theorem 6.2)")
	}
	base := CoreUpToCoefficients(p)
	out := semiring.Zero
	for _, m := range base.Monomials() {
		k, err := Aut(m, d, t, consts)
		if err != nil {
			return semiring.Zero, err
		}
		out = out.AddMonomial(m, k)
	}
	return out, nil
}

// Aut computes Aut(m) per Lemma 5.9: the number of automorphisms of the
// (p-minimal) adjunct that yielded monomial m, reconstructed from the
// database facts named by m's variables, the output tuple and the query's
// constants — all without access to the query itself.
func Aut(m semiring.Monomial, d *db.Instance, t db.Tuple, consts []string) (int, error) {
	q, err := ReconstructAdjunct(m, d, t, consts)
	if err != nil {
		return 0, err
	}
	return hom.CountAutomorphisms(q), nil
}

// ReconstructAdjunct rebuilds, up to isomorphism, the complete adjunct whose
// assignment produced the support monomial m (Lemma 5.9): every variable of
// m names a fact of D which becomes one relational atom; domain values that
// are constants of the query stay constants, all other values become
// distinct variables; the head is the tuple t under the same mapping; and
// the full set of disequalities is added (the adjunct is complete).
func ReconstructAdjunct(m semiring.Monomial, d *db.Instance, t db.Tuple, consts []string) (*query.CQ, error) {
	isConst := map[string]bool{}
	for _, c := range consts {
		isConst[c] = true
	}
	varOf := map[string]string{}
	next := 0
	argFor := func(value string) query.Arg {
		if isConst[value] {
			return query.C(value)
		}
		if v, ok := varOf[value]; ok {
			return query.V(v)
		}
		next++
		v := fmt.Sprintf("v%d", next)
		varOf[value] = v
		return query.V(v)
	}

	var atoms []query.Atom
	for _, tm := range m.Terms() {
		if tm.Exp != 1 {
			return nil, fmt.Errorf("monomial %v is not a support monomial", m)
		}
		rel, tuple, ok := d.FactOf(tm.Var)
		if !ok {
			return nil, fmt.Errorf("annotation %s does not tag any fact of the database", tm.Var)
		}
		args := make([]query.Arg, len(tuple))
		for i, val := range tuple {
			args[i] = argFor(val)
		}
		atoms = append(atoms, query.NewAtom(rel, args...))
	}

	headArgs := make([]query.Arg, len(t))
	for i, val := range t {
		headArgs[i] = argFor(val)
	}
	head := query.NewAtom("ans", headArgs...)

	// Complete the query: all pairwise variable disequalities plus variable
	// vs constant disequalities.
	var vars []string
	for _, v := range varOf {
		vars = append(vars, v)
	}
	var ds []query.Diseq
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			ds = append(ds, query.NewDiseq(query.V(vars[i]), query.V(vars[j])))
		}
		for _, c := range consts {
			ds = append(ds, query.NewDiseq(query.V(vars[i]), query.C(c)))
		}
	}
	q := query.NewCQ(head, atoms, ds)
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("reconstructed adjunct invalid (is t an output of a query over these facts?): %w", err)
	}
	return q, nil
}

// CoreSizeReduction reports the size (total variable occurrences) of p and
// of its core-up-to-coefficients, the measure used by the compactness
// experiments (E8).
func CoreSizeReduction(p semiring.Polynomial) (orig, core int) {
	return p.Size(), CoreUpToCoefficients(p).Size()
}
