package provmin

import (
	"bytes"
	"math"
	"testing"
)

func TestStoreFacadeRoundTrip(t *testing.T) {
	q := MustParseQuery("ans(x) :- R(x,y), R(y,x)")
	u := SingleQuery(q)
	d := table2()
	res, err := Eval(u, d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveResult(&buf, d, res, q.Consts()); err != nil {
		t.Fatal(err)
	}
	d2, res2, consts, err := LoadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	core, err := CoreResult(res2, d2, consts)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := core.Lookup(Tuple{"a"})
	if !pa.Equal(MustParsePolynomial("s1 + s2*s3")) {
		t.Errorf("offline core = %v", pa)
	}
	upTo := CoreResultUpToCoefficients(res2)
	if upTo.TotalProvenanceSize() > res2.TotalProvenanceSize() {
		t.Error("core must not be larger")
	}
}

func TestProbabilityFacades(t *testing.T) {
	p := MustParsePolynomial("s1 + s2")
	exact, err := DerivationProbability(p, func(string) float64 { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-0.75) > 1e-12 {
		t.Errorf("DerivationProbability = %v", exact)
	}
	mc := DerivationProbabilityMC(p, func(string) float64 { return 0.5 }, 100000, 7)
	if math.Abs(mc-0.75) > 0.02 {
		t.Errorf("DerivationProbabilityMC = %v", mc)
	}
}

func TestTrustFacades(t *testing.T) {
	p := MustParsePolynomial("s1*s2 + s3")
	costs := map[string]float64{"s1": 1, "s2": 2, "s3": 10}
	if got := TrustCost(p, func(v string) float64 { return costs[v] }); got != 3 {
		t.Errorf("TrustCost = %v", got)
	}
	if got := TrustCost(MustParsePolynomial("0"), func(string) float64 { return 1 }); got != TropicalInf {
		t.Errorf("TrustCost(0) = %v", got)
	}
	conf := map[string]float64{"s1": 0.9, "s2": 0.9, "s3": 0.5}
	if got := TrustConfidence(p, func(v string) float64 { return conf[v] }); math.Abs(got-0.81) > 1e-12 {
		t.Errorf("TrustConfidence = %v", got)
	}
}

func TestDeletionFacades(t *testing.T) {
	u := MustParseUnion("ans(x) :- R(x,y), R(y,x)")
	d := table2()
	res, err := Eval(u, d)
	if err != nil {
		t.Fatal(err)
	}
	survivors, lost := PropagateDeletion(res, map[string]bool{"s2": true, "s1": true})
	if len(survivors) != 1 || len(lost) != 1 {
		t.Errorf("survivors=%v lost=%v", survivors, lost)
	}
	reduced := DeleteByTags(d, map[string]bool{"s2": true})
	if reduced.Lookup("R").Len() != 3 {
		t.Errorf("DeleteByTags = %d tuples", reduced.Lookup("R").Len())
	}
	if NumDerivations(MustParsePolynomial("2*s1 + s2")) != 3 {
		t.Error("NumDerivations facade broken")
	}
}

func TestDatalogFacade(t *testing.T) {
	p := MustParseProgram("V(x) :- E(x,x)\nGoal(x) :- V(x)")
	u, err := UnfoldProgram(p, "Goal")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Adjuncts) != 1 || u.Adjuncts[0].Atoms[0].Rel != "E" {
		t.Errorf("UnfoldProgram = %v", u)
	}
	if _, err := ParseProgram("T(x) :- T(x)"); err == nil {
		t.Error("recursion must be rejected through the facade")
	}
}

func TestAlgebraFacadeRemaining(t *testing.T) {
	s := MustPlan(Scan("R", "x", "y"))
	r, err := Rename(s, "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	if cols := r.Columns(); cols[1] != "z" {
		t.Errorf("Rename columns = %v", cols)
	}
	u, err := UnionPlans(s, MustPlan(Scan("R", "x", "y")))
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvalPlan(u, table2())
	if err != nil {
		t.Fatal(err)
	}
	p, _ := res.Lookup(Tuple{"a", "b"})
	if !p.Equal(MustParsePolynomial("2*s2")) {
		t.Errorf("union plan prov = %v", p)
	}
	if got := ComparePolynomials(p, p); got != Equal {
		t.Errorf("self compare = %v", got)
	}
}

func TestProvenanceFacade(t *testing.T) {
	u := MustParseUnion("ans(x) :- R(x,x)")
	p, err := Provenance(u, table2(), Tuple{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(MustParsePolynomial("s1")) {
		t.Errorf("Provenance = %v", p)
	}
}

func TestEvalCountDirectFacadeBooleanQuery(t *testing.T) {
	u := MustParseUnion("ans() :- R(x,y), R(y,x)")
	counts, tuples, err := EvalCountDirect(u, table2())
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || counts[Tuple{}.Key()] != 4 {
		t.Errorf("counts = %v", counts)
	}
}
