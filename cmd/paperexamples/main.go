// Command paperexamples replays every worked example of "On Provenance
// Minimization" (PODS 2011) on the actual engine and prints the paper's
// artifacts next to the computed ones: Figure 1 with Tables 2–3, the
// Figure 2 incomparability proof of Lemma 3.6 (Tables 4–5), Example 4.2's
// canonical rewriting, the Figure 3 MinProv walkthrough with the Section 5
// polynomials (Table 6), and the Section 6 impossibility example.
//
// Usage:
//
//	paperexamples [-example fig1|fig2|ex42|fig3|sec6|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"provmin/internal/db"
	"provmin/internal/direct"
	"provmin/internal/eval"
	"provmin/internal/minimize"
	"provmin/internal/order"
	"provmin/internal/query"
	"provmin/internal/workload"
)

func main() {
	example := flag.String("example", "all", "which example to replay: fig1, fig2, ex42, fig3, sec6, all")
	flag.Parse()

	run := map[string]func() error{
		"fig1": fig1,
		"fig2": fig2,
		"ex42": ex42,
		"fig3": fig3,
		"sec6": sec6,
	}
	order := []string{"fig1", "fig2", "ex42", "fig3", "sec6"}
	if *example != "all" {
		fn, ok := run[*example]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown example %q (want fig1|fig2|ex42|fig3|sec6|all)\n", *example)
			os.Exit(2)
		}
		if err := fn(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, name := range order {
		if err := run[name](); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func header(s string) {
	fmt.Println("==================================================================")
	fmt.Println(s)
	fmt.Println("==================================================================")
}

func printResult(label string, res *eval.Result) {
	fmt.Printf("%s:\n", label)
	for _, t := range res.Tuples() {
		fmt.Printf("  %-8s %s\n", t.Tuple, t.Prov)
	}
}

// fig1 replays Examples 2.7, 2.13, 2.14 and 2.18.
func fig1() error {
	header("Figure 1 + Tables 2-3: Qunion vs Qconj (Examples 2.13, 2.14, 2.18)")
	d := workload.Table2()
	fmt.Println("Relation R (Table 2):")
	fmt.Print(indent(db.FormatInstance(d)))
	fmt.Println("Qunion:")
	fmt.Println(indent(workload.QUnion.String()))
	fmt.Println("Qconj:")
	fmt.Println(indent(workload.QConj.String()))

	rUnion, err := eval.EvalUCQ(workload.QUnion, d)
	if err != nil {
		return err
	}
	printResult("ans for Qunion (Table 3)", rUnion)
	rConj, err := eval.EvalCQ(workload.QConj, d)
	if err != nil {
		return err
	}
	printResult("ans for Qconj (Example 2.14)", rConj)

	rel, err := order.CompareOnDB(workload.QUnion, query.Single(workload.QConj), d)
	if err != nil {
		return err
	}
	fmt.Printf("order on this database: P(Qunion) %s P(Qconj)   [paper: Qunion <_P Qconj]\n", rel)
	return nil
}

// fig2 replays the Lemma 3.6 incomparability proof.
func fig2() error {
	header("Figure 2 + Tables 4-5: QnoPmin vs Qalt are provenance-incomparable (Lemma 3.6)")
	fmt.Println("QnoPmin:")
	fmt.Println(indent(workload.QNoPmin.String()))
	fmt.Println("Qalt:")
	fmt.Println(indent(workload.QAlt.String()))
	if !minimize.EquivalentCQ(workload.QNoPmin, workload.QAlt) {
		return fmt.Errorf("engine disagrees: QnoPmin and Qalt should be equivalent")
	}
	fmt.Println("equivalence check: QnoPmin == Qalt (as in the paper)")

	for _, c := range []struct {
		name string
		d    *db.Instance
	}{{"D (Table 4)", workload.Table4()}, {"D' (Table 5)", workload.Table5()}} {
		fmt.Printf("\ndatabase %s:\n", c.name)
		fmt.Print(indent(db.FormatInstance(c.d)))
		p1, err := eval.Provenance(query.Single(workload.QNoPmin), c.d, db.Tuple{})
		if err != nil {
			return err
		}
		p2, err := eval.Provenance(query.Single(workload.QAlt), c.d, db.Tuple{})
		if err != nil {
			return err
		}
		fmt.Printf("  P(QnoPmin) = %s\n", p1)
		fmt.Printf("  P(Qalt)    = %s\n", p2)
		fmt.Printf("  order: P(QnoPmin) %s P(Qalt)\n", order.Compare(p1, p2))
	}
	fmt.Println("\n=> neither query is <=_P the other; no p-minimal query exists in CQ!= (Theorem 3.5)")
	return nil
}

// ex42 replays the canonical rewriting of Example 4.2.
func ex42() error {
	header("Example 4.2: extended canonical rewriting Can(Q, {a,b})")
	fmt.Println("Q:")
	fmt.Println(indent(workload.QExample42.String()))
	can := minimize.Can(workload.QExample42, []string{"a", "b"})
	fmt.Printf("Can(Q, {a,b}) has %d adjuncts (paper: Q1..Q5):\n", len(can.Adjuncts))
	for i, a := range can.Adjuncts {
		fmt.Printf("  Q%d: %s\n", i+1, a)
	}
	if !minimize.Equivalent(query.Single(workload.QExample42), can) {
		return fmt.Errorf("engine disagrees: Q should be equivalent to Can(Q,{a,b})")
	}
	fmt.Println("equivalence check: Q == Can(Q, {a,b})  (Theorem 4.3)")
	return nil
}

// fig3 replays Example 4.7 (MinProv step by step) and the Section 5
// polynomials of Examples 5.2, 5.4 and 5.8.
func fig3() error {
	header("Figure 3 + Table 6: MinProv on Q-hat, step by step (Examples 4.7, 5.2, 5.4, 5.8)")
	d := workload.Table6()
	fmt.Println("Q-hat:")
	fmt.Println(indent(workload.QHat.String()))
	fmt.Println("Relation R (Table 6):")
	fmt.Print(indent(db.FormatInstance(d)))

	st := minimize.MinProvSteps(query.Single(workload.QHat))
	fmt.Printf("\nStep I  — canonical rewriting, %d adjuncts:\n", len(st.QI.Adjuncts))
	for i, a := range st.QI.Adjuncts {
		fmt.Printf("  Q%d: %s\n", i+1, a)
	}
	pI, err := eval.Provenance(st.QI, d, db.Tuple{})
	if err != nil {
		return err
	}
	fmt.Printf("  provenance on D-hat (Example 5.2): %s\n", pI.ExpandedString())

	fmt.Printf("\nStep II — per-adjunct minimization (duplicate-atom removal):\n")
	for i, a := range st.QII.Adjuncts {
		fmt.Printf("  Q%d: %s\n", i+1, a)
	}
	pII, err := eval.Provenance(st.QII, d, db.Tuple{})
	if err != nil {
		return err
	}
	fmt.Printf("  provenance on D-hat (Example 5.4): %s\n", pII.ExpandedString())

	fmt.Printf("\nStep III — contained adjuncts removed, %d adjuncts remain:\n", len(st.QIII.Adjuncts))
	for i, a := range st.QIII.Adjuncts {
		fmt.Printf("  Q%d: %s\n", i+1, a)
	}
	pIII, err := eval.Provenance(st.QIII, d, db.Tuple{})
	if err != nil {
		return err
	}
	fmt.Printf("  provenance on D-hat (Example 5.8): %s  (= %s)\n", pIII.ExpandedString(), pIII)

	core, err := direct.CoreExact(pI, d, db.Tuple{}, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\ndirect computation from the polynomial alone (Theorem 5.1): %s\n", core)
	if !core.Equal(pIII) {
		return fmt.Errorf("direct core %v disagrees with MinProv provenance %v", core, pIII)
	}
	fmt.Println("check: direct core == P(MinProv(Q-hat))")
	return nil
}

// sec6 replays the Theorem 6.2 counterexample.
func sec6() error {
	header("Section 6: direct core computation is impossible without the query (Theorem 6.2)")
	d := db.NewInstance()
	d.MustAdd("R", "s", "a")
	d.MustAdd("R", "s", "b")
	fmt.Println("database D (both tuples share the tag s):")
	fmt.Print(indent(db.FormatInstance(d)))
	q := query.MustParseUnion("ans(x) :- R(x), R(y), x != y")
	qp := query.MustParseUnion("ans(x) :- R(x), R(x)")
	fmt.Println("Q :", q)
	fmt.Println("Q':", qp)
	tup := db.Tuple{"a"}
	p1, err := eval.Provenance(q, d, tup)
	if err != nil {
		return err
	}
	p2, err := eval.Provenance(qp, d, tup)
	if err != nil {
		return err
	}
	fmt.Printf("P((a), Q, D)  = %s\n", p1)
	fmt.Printf("P((a), Q', D) = %s   (identical)\n", p2)
	m1, err := eval.Provenance(minimize.MinProv(q), d, tup)
	if err != nil {
		return err
	}
	m2, err := eval.Provenance(minimize.MinProv(qp), d, tup)
	if err != nil {
		return err
	}
	fmt.Printf("P((a), MinProv(Q), D)  = %s\n", m1)
	fmt.Printf("P((a), MinProv(Q'), D) = %s   (different!)\n", m2)
	fmt.Println("=> the core cannot be recovered from the polynomial on non-abstractly-tagged databases")
	return nil
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "  " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
