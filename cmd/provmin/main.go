// Command provmin is the command-line interface to the provenance
// minimization library.
//
// Subcommands:
//
//	eval     -q <rules> -db <file>            evaluate with provenance
//	minprov  -q <rules> [-steps]              p-minimal equivalent (Alg. 1)
//	minimize -q <rules>                       standard minimization baseline
//	core     -poly <p> [-db <file> -tuple a,b -consts a,b]
//	                                          direct core provenance (Thm 5.1)
//	contain  -q1 <rules> -q2 <rules>          decide Q1 ⊆ Q2
//	equiv    -q1 <rules> -q2 <rules>          decide Q1 ≡ Q2
//	class    -q <rules>                       query class (Table 1 rows)
//	explain  -q <rules> -db <file> -tuple a,b list a tuple's derivations
//
// Queries use the rule syntax "ans(x) :- R(x,y), x != y"; unions separate
// rules with ';' or newlines. Databases use one fact per line:
// "<relation> <tag> <value>...". The implementation lives in internal/cli.
package main

import (
	"errors"
	"fmt"
	"os"

	"provmin/internal/cli"
)

func main() {
	err := cli.Run(cli.DefaultEnv(), os.Args[1:])
	if err == nil {
		return
	}
	var exit *cli.ExitError
	if errors.As(err, &exit) {
		os.Exit(exit.Code)
	}
	fmt.Fprintln(os.Stderr, "provmin:", err)
	os.Exit(1)
}
