package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"provmin/internal/tier"
)

// buildBinary compiles provmind once per test binary.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "provmind")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

var listenPat = regexp.MustCompile(`listening on ([0-9.:\[\]]+)`)

// startServer launches provmind on an ephemeral port and returns its base
// URL and the running process.
func startServer(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	// One goroutine both watches for the listen line and keeps draining
	// stderr so the child never blocks on a full pipe.
	sc := bufio.NewScanner(stderr)
	addrc := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if m := listenPat.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr, cmd
	case <-time.After(15 * time.Second):
		t.Fatal("provmind did not report a listening address")
		return "", nil
	}
}

func httpDo(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		resp, err = http.DefaultClient.Do(req)
		if err == nil {
			break
		}
		if attempt > 50 {
			t.Fatalf("%s %s: %v", method, url, err)
		}
		time.Sleep(20 * time.Millisecond)
		if body != "" {
			req.Body = io.NopCloser(strings.NewReader(body))
		}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestSIGKILLRecovery is the acceptance scenario end to end on the real
// binary: N acknowledged ingests, SIGKILL (no shutdown path at all), a
// fresh process on the same -data-dir, and a byte-identical /core answer.
func TestSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs real processes")
	}
	bin := buildBinary(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{"-data-dir", dataDir, "-wal-sync", "always", "-shards", "4"}

	url, cmd := startServer(t, bin, args...)
	code, body := httpDo(t, "POST", url+"/instances", `{"initial":"R r1 a a\nR r2 a b\nR r3 b a"}`)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	const n = 7
	for i := 0; i < n; i++ {
		code, body = httpDo(t, "POST", url+"/instances/i1/tuples",
			fmt.Sprintf(`{"facts":[{"rel":"R","tag":"w%d","values":["n%d","a"]}]}`, i, i))
		if code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, code, body)
		}
	}
	coreQ := "/core?instance=i1&q=ans(x)+:-+R(x,y),+R(y,x)"
	code, wantCore := httpDo(t, "GET", url+coreQ, "")
	if code != http.StatusOK {
		t.Fatalf("core: %d %s", code, wantCore)
	}

	// SIGKILL: the process gets no chance to flush or shut down.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()

	url2, _ := startServer(t, bin, args...)
	code, info := httpDo(t, "GET", url2+"/instances/i1", "")
	if code != http.StatusOK {
		t.Fatalf("instance after restart: %d %s", code, info)
	}
	if want := fmt.Sprintf(`"tuples":%d`, 3+n); !strings.Contains(string(info), want) {
		t.Fatalf("recovered instance %s, want %s — acknowledged ingests lost", info, want)
	}
	// The generation counter must be restored exactly: each of the n
	// sequential single-fact ingests was one batch, so generation == n.
	// Result-cache correctness across restarts hangs on this stamp.
	if want := fmt.Sprintf(`"version":%d`, n); !strings.Contains(string(info), want) {
		t.Fatalf("recovered instance %s, want %s — generation counter not restored", info, want)
	}
	code, gotCore := httpDo(t, "GET", url2+coreQ, "")
	if code != http.StatusOK {
		t.Fatalf("core after restart: %d %s", code, gotCore)
	}
	if !bytes.Equal(gotCore, wantCore) {
		t.Errorf("/core not byte-identical across SIGKILL:\npre:  %s\npost: %s", wantCore, gotCore)
	}
	// The recovered symbol table must keep working, not just exist: a
	// post-restart ingest re-interns old values ("n3", "a") and mints a new
	// id, and the join below only finds (n3, n3) if the recovered ids and
	// the fresh ones meet in one coherent table.
	code, body = httpDo(t, "POST", url2+"/instances/i1/tuples",
		`{"facts":[{"rel":"R","tag":"z1","values":["a","n3"]}]}`)
	if code != http.StatusOK {
		t.Fatalf("ingest after restart: %d %s", code, body)
	}
	code, res := httpDo(t, "POST", url2+"/query",
		`{"instance":"i1","query":"ans(x) :- R(x,y), R(y,x)"}`)
	if code != http.StatusOK {
		t.Fatalf("query after restart: %d %s", code, res)
	}
	if !strings.Contains(string(res), "n3") {
		t.Errorf("post-restart join through recovered symbols missed (n3,a)+(a,n3): %s", res)
	}
}

// TestSIGKILLGenerationInterval covers -wal-sync interval under concurrent
// ingest: acknowledged batches are fsynced only by the background tick, so
// a SIGKILL may lose an unsynced suffix — but the recovered generation
// must correspond exactly to the recovered facts (generation == applied
// single-fact batches), and an /admin/snapshot'ed prefix must never be
// lost. That correspondence is what makes the result cache safe across
// crashes: a stale generation with newer facts (or vice versa) would serve
// wrong cached results.
func TestSIGKILLGenerationInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs real processes")
	}
	bin := buildBinary(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{"-data-dir", dataDir, "-wal-sync", "interval", "-wal-sync-interval", "1h", "-shards", "2"}

	url, cmd := startServer(t, bin, args...)
	code, body := httpDo(t, "POST", url+"/instances", `{"initial":"R r1 a a\nR r2 a b\nR r3 b a"}`)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	// Concurrent ingest: requests may coalesce into shared batches, so the
	// generation counts flushed batches, not requests — the exactness
	// assertions below use the instance info the live server reports.
	const writers, per = 4, 5
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		go func(g int) {
			for i := 0; i < per; i++ {
				code, body := httpDo(t, "POST", url+"/instances/i1/tuples",
					fmt.Sprintf(`{"facts":[{"rel":"R","tag":"g%d_%d","values":["g%d_%d","a"]}]}`, g, i, g, i))
				if code != http.StatusOK {
					errs <- fmt.Errorf("ingest g%d_%d: %d %s", g, i, code, body)
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < writers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	type instInfo struct {
		Tuples  int    `json:"tuples"`
		Version uint64 `json:"version"`
	}
	getInfo := func(base string) instInfo {
		t.Helper()
		code, raw := httpDo(t, "GET", base+"/instances/i1", "")
		if code != http.StatusOK {
			t.Fatalf("instance info: %d %s", code, raw)
		}
		var in instInfo
		if err := json.Unmarshal(raw, &in); err != nil {
			t.Fatalf("instance body %s: %v", raw, err)
		}
		return in
	}
	// Persist the prefix deterministically (the 1h ticker never fires).
	pre := getInfo(url)
	if code, body := httpDo(t, "POST", url+"/admin/snapshot", ""); code != http.StatusOK {
		t.Fatalf("snapshot: %d %s", code, body)
	}
	// An acknowledged-but-unsynced suffix the SIGKILL may legitimately
	// lose. Sequential single-fact requests: each is its own batch, so the
	// suffix advances generation and tuple count in lockstep.
	const late = 3
	for i := 0; i < late; i++ {
		if code, body := httpDo(t, "POST", url+"/instances/i1/tuples",
			fmt.Sprintf(`{"facts":[{"rel":"R","tag":"late%d","values":["late%d","a"]}]}`, i, i)); code != http.StatusOK {
			t.Fatalf("late ingest: %d %s", code, body)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()

	url2, cmd2 := startServer(t, bin, args...)
	got := getInfo(url2)
	// The snapshot'ed prefix is a floor; the lost suffix bounds the ceiling.
	if got.Version < pre.Version || got.Version > pre.Version+late {
		t.Fatalf("recovered generation %d outside [%d,%d] — snapshot'ed prefix lost or suffix invented",
			got.Version, pre.Version, pre.Version+late)
	}
	// Generation↔state correspondence: however much of the single-fact
	// suffix survived, tuples and generation must have advanced together.
	if got.Tuples-pre.Tuples != int(got.Version-pre.Version) {
		t.Fatalf("recovered tuples=%d generation=%d from tuples=%d generation=%d: generation does not count applied batches",
			got.Tuples, got.Version, pre.Tuples, pre.Version)
	}

	// Replay is exact: a second crash+restart with no writes in between
	// recovers the identical (generation, tuples) state.
	if err := cmd2.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd2.Process.Wait()
	url3, _ := startServer(t, bin, args...)
	if again := getInfo(url3); again != got {
		t.Fatalf("second replay diverged: %+v vs %+v", again, got)
	}
}

// TestFlagValidation: bad -wal-sync must fail fast, not run undurable.
func TestFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds real processes")
	}
	bin := buildBinary(t)
	cmd := exec.Command(bin, "-data-dir", t.TempDir(), "-wal-sync", "sometimes")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("bad -wal-sync accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "sync mode") {
		t.Errorf("error output %s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Errorf("unexpected error type %T: %v", err, err)
	}
	_ = os.Remove(bin)
}

// TestSIGKILLEvictedRecoversCold: an instance evicted to the cold tier
// before a SIGKILL must come back *cold* after restart — registered from
// the blob listing, not replayed into RAM — and the first /core after the
// transparent fault-in must be byte-identical to the pre-evict response.
func TestSIGKILLEvictedRecoversCold(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs real processes")
	}
	bin := buildBinary(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{"-data-dir", dataDir, "-snapshot-backend", "fs", "-shards", "4"}

	url, cmd := startServer(t, bin, args...)
	code, body := httpDo(t, "POST", url+"/instances", `{"initial":"R r1 a a\nR r2 a b\nR r3 b a"}`)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	for i := 0; i < 5; i++ {
		code, body = httpDo(t, "POST", url+"/instances/i1/tuples",
			fmt.Sprintf(`{"facts":[{"rel":"R","tag":"w%d","values":["n%d","a"]}]}`, i, i))
		if code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, code, body)
		}
	}
	// A second instance that stays resident, so the restart shows a split.
	if code, body := httpDo(t, "POST", url+"/instances", "{}"); code != http.StatusCreated {
		t.Fatalf("create filler: %d %s", code, body)
	}
	coreQ := "/core?instance=i1&q=ans(x)+:-+R(x,y),+R(y,x)"
	code, wantCore := httpDo(t, "GET", url+coreQ, "")
	if code != http.StatusOK {
		t.Fatalf("core pre-evict: %d %s", code, wantCore)
	}
	if code, body := httpDo(t, "POST", url+"/admin/evict", `{"instance":"i1"}`); code != http.StatusOK {
		t.Fatalf("evict: %d %s", code, body)
	}

	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()

	url2, _ := startServer(t, bin, args...)
	// Residency is side-effect free: it proves i1 came back cold without
	// destroying its coldness.
	code, res := httpDo(t, "GET", url2+"/admin/residency", "")
	if code != http.StatusOK {
		t.Fatalf("residency after restart: %d %s", code, res)
	}
	var resInfo struct {
		Resident []struct {
			ID string `json:"id"`
		} `json:"resident"`
		Cold []string `json:"cold"`
	}
	if err := json.Unmarshal(res, &resInfo); err != nil {
		t.Fatalf("residency body %s: %v", res, err)
	}
	if len(resInfo.Cold) != 1 || resInfo.Cold[0] != "i1" {
		t.Fatalf("cold after restart = %s, want [i1]", res)
	}
	if len(resInfo.Resident) != 1 || resInfo.Resident[0].ID != "i2" {
		t.Fatalf("resident after restart = %s, want [i2]", res)
	}
	// First touch faults it in; the answer must match the pre-evict bytes.
	code, gotCore := httpDo(t, "GET", url2+coreQ, "")
	if code != http.StatusOK {
		t.Fatalf("core after restart: %d %s", code, gotCore)
	}
	if !bytes.Equal(gotCore, wantCore) {
		t.Errorf("/core not byte-identical across evict+SIGKILL:\npre:  %s\npost: %s", wantCore, gotCore)
	}
}

// TestS3BackendEndToEnd drives the binary against an S3-compatible object
// store (the in-test fake, over real HTTP with SigV4): evict to it, kill,
// restart, fault back in.
func TestS3BackendEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs real processes")
	}
	store := httptest.NewServer(tier.NewFakeObjectStore("provmind"))
	defer store.Close()
	bin := buildBinary(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{
		"-data-dir", dataDir, "-shards", "2",
		"-snapshot-backend", "s3", "-s3-endpoint", store.URL, "-s3-bucket", "provmind",
		"-s3-prefix", "prod", "-s3-access-key", "k", "-s3-secret-key", "s",
	}

	url, cmd := startServer(t, bin, args...)
	if code, body := httpDo(t, "POST", url+"/instances", `{"initial":"R r1 a a\nR r2 a b\nR r3 b a"}`); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	coreQ := "/core?instance=i1&q=ans(x)+:-+R(x,y),+R(y,x)"
	code, wantCore := httpDo(t, "GET", url+coreQ, "")
	if code != http.StatusOK {
		t.Fatalf("core: %d %s", code, wantCore)
	}
	if code, body := httpDo(t, "POST", url+"/admin/evict", `{"instance":"i1"}`); code != http.StatusOK {
		t.Fatalf("evict to s3: %d %s", code, body)
	}

	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()

	url2, _ := startServer(t, bin, args...)
	code, res := httpDo(t, "GET", url2+"/admin/residency", "")
	if code != http.StatusOK || !strings.Contains(string(res), `"cold":["i1"]`) {
		t.Fatalf("residency after restart: %d %s, want i1 cold", code, res)
	}
	code, gotCore := httpDo(t, "GET", url2+coreQ, "")
	if code != http.StatusOK {
		t.Fatalf("core after restart: %d %s", code, gotCore)
	}
	if !bytes.Equal(gotCore, wantCore) {
		t.Errorf("/core not byte-identical via s3 tier:\npre:  %s\npost: %s", wantCore, gotCore)
	}
}
