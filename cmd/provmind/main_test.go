package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildBinary compiles provmind once per test binary.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "provmind")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

var listenPat = regexp.MustCompile(`listening on ([0-9.:\[\]]+)`)

// startServer launches provmind on an ephemeral port and returns its base
// URL and the running process.
func startServer(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	// One goroutine both watches for the listen line and keeps draining
	// stderr so the child never blocks on a full pipe.
	sc := bufio.NewScanner(stderr)
	addrc := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if m := listenPat.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr, cmd
	case <-time.After(15 * time.Second):
		t.Fatal("provmind did not report a listening address")
		return "", nil
	}
}

func httpDo(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		resp, err = http.DefaultClient.Do(req)
		if err == nil {
			break
		}
		if attempt > 50 {
			t.Fatalf("%s %s: %v", method, url, err)
		}
		time.Sleep(20 * time.Millisecond)
		if body != "" {
			req.Body = io.NopCloser(strings.NewReader(body))
		}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestSIGKILLRecovery is the acceptance scenario end to end on the real
// binary: N acknowledged ingests, SIGKILL (no shutdown path at all), a
// fresh process on the same -data-dir, and a byte-identical /core answer.
func TestSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs real processes")
	}
	bin := buildBinary(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{"-data-dir", dataDir, "-wal-sync", "always", "-shards", "4"}

	url, cmd := startServer(t, bin, args...)
	code, body := httpDo(t, "POST", url+"/instances", `{"initial":"R r1 a a\nR r2 a b\nR r3 b a"}`)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	const n = 7
	for i := 0; i < n; i++ {
		code, body = httpDo(t, "POST", url+"/instances/i1/tuples",
			fmt.Sprintf(`{"facts":[{"rel":"R","tag":"w%d","values":["n%d","a"]}]}`, i, i))
		if code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, code, body)
		}
	}
	coreQ := "/core?instance=i1&q=ans(x)+:-+R(x,y),+R(y,x)"
	code, wantCore := httpDo(t, "GET", url+coreQ, "")
	if code != http.StatusOK {
		t.Fatalf("core: %d %s", code, wantCore)
	}

	// SIGKILL: the process gets no chance to flush or shut down.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()

	url2, _ := startServer(t, bin, args...)
	code, info := httpDo(t, "GET", url2+"/instances/i1", "")
	if code != http.StatusOK {
		t.Fatalf("instance after restart: %d %s", code, info)
	}
	if want := fmt.Sprintf(`"tuples":%d`, 3+n); !strings.Contains(string(info), want) {
		t.Fatalf("recovered instance %s, want %s — acknowledged ingests lost", info, want)
	}
	code, gotCore := httpDo(t, "GET", url2+coreQ, "")
	if code != http.StatusOK {
		t.Fatalf("core after restart: %d %s", code, gotCore)
	}
	if !bytes.Equal(gotCore, wantCore) {
		t.Errorf("/core not byte-identical across SIGKILL:\npre:  %s\npost: %s", wantCore, gotCore)
	}
}

// TestFlagValidation: bad -wal-sync must fail fast, not run undurable.
func TestFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds real processes")
	}
	bin := buildBinary(t)
	cmd := exec.Command(bin, "-data-dir", t.TempDir(), "-wal-sync", "sometimes")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("bad -wal-sync accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "sync mode") {
		t.Errorf("error output %s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Errorf("unexpected error type %T: %v", err, err)
	}
	_ = os.Remove(bin)
}
