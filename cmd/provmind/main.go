// Command provmind is the provenance-minimization service: a long-lived
// HTTP server that hosts annotated database instances, evaluates UCQ≠
// queries with provenance concurrently, and serves core provenance through
// a cache of p-minimal query forms. With -data-dir it is durable: every
// acknowledged create/ingest/drop is write-ahead-logged, and a restart
// (even after SIGKILL) replays snapshot + WAL back into identical state.
//
// Usage:
//
//	provmind [-addr :8411] [-workers N] [-cache 1024]
//	         [-eval-intern=true] [-eval-stats=true] [-eval-parallel 0]
//	         [-result-cache-size 128] [-result-cache-bytes 33554432]
//	         [-result-cache-maintain=true]
//	         [-batch 256] [-batch-wait 2ms] [-shards 8]
//	         [-data-dir DIR] [-wal-sync always|interval|none]
//	         [-wal-sync-interval 100ms]
//	         [-resident-budget-bytes N] [-cold-after 0]
//	         [-snapshot-backend fs|s3] [-cold-dir DIR]
//	         [-s3-endpoint URL] [-s3-bucket B]
//	         [-s3-prefix P] [-s3-region R] [-s3-access-key K] [-s3-secret-key S]
//	         [-node-name NAME -peers a=URL,b=URL,...] [-vnodes 64]
//	         [-probe-interval 2s]
//
// Tiered storage: with a snapshot backend configured, idle instances are
// snapshotted into per-instance blobs, evicted from RAM when the resident
// byte budget (or the -cold-after idle deadline) demands it, and faulted
// back in transparently on next touch. -snapshot-backend fs stores blobs
// under <data-dir>/cold; s3 speaks the S3 REST dialect (MinIO-compatible,
// SigV4) against -s3-endpoint.
//
// Clustering: with -node-name and -peers this node joins a static cluster.
// Each member gets a consistent-hash slice of the instance id space; the
// provrouter binary fronts the cluster and proxies every request to the
// owning node. Clustered nodes share one cold tier (-cold-dir pointing at
// shared storage, or one s3 bucket): instance handoff between nodes moves
// a single blob, never rows. Clustered nodes additionally serve
// GET /gen/{id}, GET /topology, POST /admin/adopt and POST /admin/release.
//
// Endpoints (see internal/server): /instances, /query, /core, /prob,
// /trust, /deletion, /admin/snapshot, /admin/compact, /admin/evict,
// /admin/residency, /metrics, /healthz.
//
// Quick start:
//
//	provmind -addr :8411 -data-dir /var/lib/provmind &
//	curl -s -X POST localhost:8411/instances \
//	     -d '{"initial":"R r1 a a\nR r2 a b\nR r3 b a"}'
//	curl -s -X POST localhost:8411/query \
//	     -d '{"instance":"i1","query":"ans(x) :- R(x,y), R(y,x)"}'
//	curl -s "localhost:8411/core?instance=i1&q=ans(x)+:-+R(x,y),+R(y,x)"
//	curl -s -X POST localhost:8411/admin/compact
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"provmin/internal/cluster"
	"provmin/internal/engine"
	"provmin/internal/eval"
	"provmin/internal/metrics"
	"provmin/internal/persist"
	"provmin/internal/server"
	"provmin/internal/tier"
)

func main() {
	var (
		addr          = flag.String("addr", ":8411", "listen address")
		workers       = flag.Int("workers", 0, "evaluation worker count (0 = GOMAXPROCS)")
		evalIntern    = flag.Bool("eval-intern", true, "evaluate joins on interned symbol ids (false = string keys, the ablation baseline)")
		evalStats     = flag.Bool("eval-stats", true, "order joins with cardinality statistics (false = size-based planner)")
		evalParallel  = flag.Int("eval-parallel", 0, "parallel hash-join probe workers (0 = GOMAXPROCS, 1 = sequential)")
		cacheSize     = flag.Int("cache", 1024, "minimized-query LRU cache entries")
		resCacheSize  = flag.Int("result-cache-size", 128, "result-cache entries per instance (0 disables result caching)")
		resCacheBytes = flag.Int("result-cache-bytes", 32<<20, "approximate result-cache byte bound per instance (0 = entries-only bound)")
		resCacheMaint = flag.Bool("result-cache-maintain", true, "incrementally maintain cached results across ingests instead of invalidating them")
		batch         = flag.Int("batch", 256, "ingest batch size (facts)")
		batchWait     = flag.Duration("batch-wait", 2*time.Millisecond, "max ingest batching delay")
		shards        = flag.Int("shards", 8, "registry/WAL stripe count")
		dataDir       = flag.String("data-dir", "", "durable data directory (empty = in-memory only)")
		walSync       = flag.String("wal-sync", "always", "WAL durability: always, interval or none")
		syncInterval  = flag.Duration("wal-sync-interval", 100*time.Millisecond, "fsync period for -wal-sync interval")
		residentBytes = flag.Int64("resident-budget-bytes", 0, "approximate byte budget for resident instances (0 = unbounded; needs a snapshot backend)")
		coldAfter     = flag.Duration("cold-after", 0, "evict instances idle this long (0 = never; needs a snapshot backend)")
		snapBackend   = flag.String("snapshot-backend", "", "cold-tier blob store: fs or s3 (default fs under -data-dir when tiering flags are set)")
		s3Endpoint    = flag.String("s3-endpoint", "", "S3-compatible endpoint URL for -snapshot-backend s3")
		s3Bucket      = flag.String("s3-bucket", "provmind", "bucket for -snapshot-backend s3")
		s3Prefix      = flag.String("s3-prefix", "", "key prefix for -snapshot-backend s3")
		s3Region      = flag.String("s3-region", "", "signing region for -snapshot-backend s3")
		s3AccessKey   = flag.String("s3-access-key", "", "access key for -snapshot-backend s3 (empty = anonymous)")
		s3SecretKey   = flag.String("s3-secret-key", "", "secret key for -snapshot-backend s3")
		coldDir       = flag.String("cold-dir", "", "blob directory for -snapshot-backend fs (default <data-dir>/cold; clustered nodes point this at shared storage)")
		nodeName      = flag.String("node-name", "", "this node's name in -peers (enables clustering)")
		peers         = flag.String("peers", "", "cluster members as name=url,... (requires -node-name)")
		vnodes        = flag.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = default)")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "peer health probing period (0 disables)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "provmind: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	reg := metrics.NewRegistry()

	// Cluster membership resolves first: the ring decides which cold blobs
	// this node adopts at boot and which instance misses it may heal.
	var topo *cluster.Topology
	if *peers != "" || *nodeName != "" {
		if *peers == "" || *nodeName == "" {
			log.Fatalf("provmind: clustering needs both -node-name and -peers")
		}
		nodes, err := cluster.ParsePeers(*peers)
		if err != nil {
			log.Fatalf("provmind: %v", err)
		}
		topo, err = cluster.NewTopology(cluster.TopologyConfig{
			Peers:         nodes,
			Self:          *nodeName,
			VNodes:        *vnodes,
			ProbeInterval: *probeInterval,
			Metrics:       reg,
		})
		if err != nil {
			log.Fatalf("provmind: %v", err)
		}
		defer topo.Close()
	}

	// Resolve the cold-tier backend before the WAL opens: replay needs it to
	// read fault-in records. Tiering flags without an explicit backend
	// default to fs (which needs -data-dir or -cold-dir for a home).
	backendName := *snapBackend
	if backendName == "" && (*residentBytes > 0 || *coldAfter > 0 || *coldDir != "") {
		backendName = "fs"
	}
	var backend tier.SnapshotBackend
	switch backendName {
	case "":
	case "fs":
		blobDir := *coldDir
		if blobDir == "" {
			if *dataDir == "" {
				log.Fatalf("provmind: -snapshot-backend fs needs -data-dir or -cold-dir for the blob directory")
			}
			blobDir = filepath.Join(*dataDir, "cold")
		}
		var err error
		backend, err = tier.NewFSBackend(blobDir)
		if err != nil {
			log.Fatalf("provmind: open cold blob dir: %v", err)
		}
	case "s3":
		if *s3Endpoint == "" {
			log.Fatalf("provmind: -snapshot-backend s3 needs -s3-endpoint")
		}
		var err error
		backend, err = tier.NewObjectBackend(tier.ObjectConfig{
			Endpoint:  *s3Endpoint,
			Bucket:    *s3Bucket,
			Prefix:    *s3Prefix,
			Region:    *s3Region,
			AccessKey: *s3AccessKey,
			SecretKey: *s3SecretKey,
		})
		if err != nil {
			log.Fatalf("provmind: configure s3 backend: %v", err)
		}
	default:
		log.Fatalf("provmind: unknown -snapshot-backend %q (want fs or s3)", backendName)
	}

	var logStore *persist.Log
	if *dataDir != "" {
		mode, err := persist.ParseSyncMode(*walSync)
		if err != nil {
			log.Fatalf("provmind: %v", err)
		}
		start := time.Now()
		logStore, err = persist.Open(persist.Options{
			Dir:          *dataDir,
			Shards:       *shards,
			Sync:         mode,
			SyncInterval: *syncInterval,
			Metrics:      reg,
			Cold:         backend,
		})
		if err != nil {
			log.Fatalf("provmind: open data dir: %v", err)
		}
		log.Printf("provmind: recovered %d instances from %s in %s (wal-sync=%s)",
			len(logStore.Recovered()), *dataDir, time.Since(start).Round(time.Millisecond), mode)
	}

	// The engine treats 0 as "use the default", so an explicit 0 on the
	// command line (= disable / unbound) maps to the negative sentinel.
	resSize, resBytes := *resCacheSize, int64(*resCacheBytes)
	if resSize == 0 {
		resSize = -1
	}
	if resBytes == 0 {
		resBytes = -1
	}
	cfg := engine.Config{
		Workers: *workers,
		Eval: eval.Options{
			NoIntern:    !*evalIntern,
			NoStats:     !*evalStats,
			Parallelism: *evalParallel,
		},
		CacheSize:                *cacheSize,
		ResultCacheSize:          resSize,
		ResultCacheBytes:         resBytes,
		DisableResultMaintenance: !*resCacheMaint,
		IngestBatchSize:          *batch,
		IngestMaxWait:            *batchWait,
		Shards:                   *shards,
		Persist:                  logStore,
		Metrics:                  reg,
		Backend:                  backend,
		ResidentBudgetBytes:      *residentBytes,
		ColdAfter:                *coldAfter,
	}
	// Clustered lookup misses heal from the shared cold tier: the ring
	// owner adopts the blob outright (it may have been released by a
	// departing peer); the replica borrows a read-only copy so it can serve
	// failover reads without stealing ownership.
	if topo != nil && backend != nil {
		cfg.AdoptOnMiss = func(id string) engine.AdoptMode {
			switch {
			case topo.OwnsLocally(id):
				return engine.AdoptOwned
			case topo.ReplicaLocally(id):
				return engine.AdoptBorrowed
			default:
				return engine.AdoptNone
			}
		}
	}
	eng := engine.New(cfg)
	defer eng.Close()
	if backend != nil {
		// Register cold blobs (without loading them) and GC blobs of
		// dropped instances whose live deletion was lost to a crash. In a
		// cluster the cold tier is shared, so only blobs this node owns per
		// the ring are adopted (or GC'd) — the rest belong to peers.
		var owns func(string) bool
		if topo != nil {
			owns = topo.OwnsLocally
		}
		if err := eng.AdoptCold(context.Background(), owns); err != nil {
			log.Printf("provmind: adopt cold blobs: %v", err)
			eng.Close()
			os.Exit(1)
		}
		res := eng.Residency()
		log.Printf("provmind: tiered storage on %s (budget=%d bytes, cold-after=%s): %d resident, %d cold",
			backend, *residentBytes, *coldAfter, len(res.Resident), len(res.Cold))
	}

	// Listen before logging so the printed address is the bound one —
	// with ":0" the tests (and operators) can parse the real port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		// Not Fatalf: the engine (and with it the WAL) must close so
		// buffered acknowledged records reach disk.
		log.Printf("provmind: listen: %v", err)
		eng.Close()
		os.Exit(1)
	}
	handler := server.New(eng)
	if topo != nil {
		handler = server.NewClustered(eng, topo)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if topo != nil {
		log.Printf("provmind: cluster node %s of %v (ring v%d)",
			topo.Self(), topo.Ring().Nodes(), topo.Ring().Version())
	}
	log.Printf("provmind listening on %s (workers=%d cache=%d batch=%d/%s shards=%d durable=%t)",
		ln.Addr(), *workers, *cacheSize, *batch, *batchWait, *shards, logStore != nil)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Printf("provmind: %v", err)
		eng.Close() // flush + fsync the WAL before exiting
		os.Exit(1)
	case sig := <-sigc:
		log.Printf("provmind: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("provmind: shutdown: %v", err)
		}
	}
}
