// Command provmind is the provenance-minimization service: a long-lived
// HTTP server that hosts annotated database instances, evaluates UCQ≠
// queries with provenance concurrently, and serves core provenance through
// a cache of p-minimal query forms.
//
// Usage:
//
//	provmind [-addr :8411] [-workers N] [-cache 1024]
//	         [-batch 256] [-batch-wait 2ms]
//
// Endpoints (see internal/server): /instances, /query, /core, /prob,
// /trust, /deletion, /metrics, /healthz.
//
// Quick start:
//
//	provmind -addr :8411 &
//	curl -s -X POST localhost:8411/instances \
//	     -d '{"initial":"R r1 a a\nR r2 a b\nR r3 b a"}'
//	curl -s -X POST localhost:8411/query \
//	     -d '{"instance":"i1","query":"ans(x) :- R(x,y), R(y,x)"}'
//	curl -s "localhost:8411/core?instance=i1&q=ans(x)+:-+R(x,y),+R(y,x)"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"provmin/internal/engine"
	"provmin/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8411", "listen address")
		workers   = flag.Int("workers", 0, "evaluation worker count (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache", 1024, "minimized-query LRU cache entries")
		batch     = flag.Int("batch", 256, "ingest batch size (facts)")
		batchWait = flag.Duration("batch-wait", 2*time.Millisecond, "max ingest batching delay")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "provmind: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	eng := engine.New(engine.Config{
		Workers:         *workers,
		CacheSize:       *cacheSize,
		IngestBatchSize: *batch,
		IngestMaxWait:   *batchWait,
	})
	defer eng.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(eng),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("provmind listening on %s (workers=%d cache=%d batch=%d/%s)",
		*addr, *workers, *cacheSize, *batch, *batchWait)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("provmind: %v", err)
	case sig := <-sigc:
		log.Printf("provmind: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("provmind: shutdown: %v", err)
		}
	}
}
