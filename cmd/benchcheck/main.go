// Command benchcheck compares two bench.sh JSON files and fails when any
// benchmark's ns/op regressed beyond a threshold — the CI regression gate.
//
// Usage:
//
//	benchcheck -baseline bench/baseline.json -new bench/bench-<ts>.json \
//	           [-max-regress 25] [-min-ns 100] [-strict]
//
// Both files may carry several samples per benchmark (bench.sh --count N,
// or -cpu variants); same-name samples are reduced to their median before
// comparison, so one noisy sample cannot trip the gate or skew a freshly
// recorded baseline.
//
// A benchmark counts as regressed when its new median ns/op exceeds the
// baseline by more than -max-regress percent AND the absolute slowdown is
// at least -min-ns nanoseconds (so sub-100ns timer noise never trips the
// gate).
// Each comparison line also shows allocs/op next to ns/op — informational,
// not gated: allocation-count changes are the usual early signal behind a
// later ns/op regression, and surfacing them in the same output makes the
// CI artifact diffable for both at once.
// Benchmarks only in the new run never fail the gate (they have no
// baseline yet). Benchmarks only in the baseline print MISSING; by default
// that is informational, but with -strict (on in CI) missing entries fail
// the gate — otherwise a deleted or renamed benchmark silently drops out
// of regression coverage while the gate keeps reporting success. Refresh
// the baseline (scripts/bench.sh --update-baseline) in the same change
// that removes or renames a benchmark.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type entry struct {
	TS       string   `json:"ts"`
	Bench    string   `json:"bench"` // full name, cpu suffix included
	Name     string   `json:"name"`  // trimmed display name
	Iters    int64    `json:"iters"`
	NsOp     *float64 `json:"ns_per_op"`
	BytesOp  *float64 `json:"bytes_per_op"`
	AllocsOp *float64 `json:"allocs_per_op"`
}

func load(path string) (map[string]entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []entry
	if err := json.Unmarshal(raw, &list); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// Key on the trimmed name: the -N cpu suffix varies with the machine's
	// GOMAXPROCS (and is absent entirely on 1-CPU hosts), so the full name
	// would never match across baseline and CI runners.
	samples := map[string][]entry{}
	var order []string
	for _, e := range list {
		key := e.Name
		if key == "" {
			key = e.Bench
		}
		if key == "" || e.NsOp == nil {
			continue
		}
		if _, seen := samples[key]; !seen {
			order = append(order, key)
		}
		samples[key] = append(samples[key], e)
	}
	out := make(map[string]entry, len(samples))
	for _, k := range order {
		out[k] = aggregate(samples[k])
	}
	return out, nil
}

// aggregate reduces one benchmark's samples — several per name whenever
// the run used -count N or -cpu — to their per-metric medians. A single
// noisy sample (GC pause, CI neighbor) then cannot trip the gate or, worse,
// inflate a freshly recorded baseline; a single sample passes through
// unchanged, so -count 1 runs behave as before.
func aggregate(ss []entry) entry {
	e := ss[0]
	e.NsOp = median(ss, func(s entry) *float64 { return s.NsOp })
	e.BytesOp = median(ss, func(s entry) *float64 { return s.BytesOp })
	e.AllocsOp = median(ss, func(s entry) *float64 { return s.AllocsOp })
	return e
}

// median returns the median of the non-nil values of one metric (the mean
// of the middle pair for even counts), or nil when no sample carries it.
func median(ss []entry, metric func(entry) *float64) *float64 {
	vals := make([]float64, 0, len(ss))
	for _, s := range ss {
		if v := metric(s); v != nil {
			vals = append(vals, *v)
		}
	}
	if len(vals) == 0 {
		return nil
	}
	sort.Float64s(vals)
	m := vals[len(vals)/2]
	if len(vals)%2 == 0 {
		m = (vals[len(vals)/2-1] + vals[len(vals)/2]) / 2
	}
	return &m
}

func main() {
	var (
		baselinePath = flag.String("baseline", "bench/baseline.json", "baseline bench JSON")
		newPath      = flag.String("new", "", "freshly recorded bench JSON")
		maxRegress   = flag.Float64("max-regress", 25, "max allowed ns/op regression, percent")
		minNs        = flag.Float64("min-ns", 100, "ignore regressions smaller than this many ns/op")
		strict       = flag.Bool("strict", false, "fail when a baseline benchmark is missing from the new run")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -new is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}

	var keys []string
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	failed := 0
	compared := 0
	missing := 0
	for _, k := range keys {
		b, c := base[k], cur[k]
		if _, ok := cur[k]; !ok {
			fmt.Printf("MISSING  %-50s baseline %.1f ns/op, not in new run\n", k, *b.NsOp)
			missing++
			continue
		}
		compared++
		oldNs, newNs := *b.NsOp, *c.NsOp
		deltaPct := 0.0
		if oldNs > 0 {
			deltaPct = (newNs - oldNs) / oldNs * 100
		}
		status := "ok"
		if deltaPct > *maxRegress && newNs-oldNs >= *minNs {
			status = "REGRESSED"
			failed++
		}
		fmt.Printf("%-9s %-50s %12.1f -> %12.1f ns/op  %+7.1f%%  %s\n",
			status, k, oldNs, newNs, deltaPct, allocsDelta(b.AllocsOp, c.AllocsOp))
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			fmt.Printf("NEW      %-50s %.1f ns/op (no baseline)  %s\n",
				k, *cur[k].NsOp, allocsDelta(nil, cur[k].AllocsOp))
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no comparable benchmarks — empty baseline or mismatched names")
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d of %d benchmarks regressed more than %.0f%%\n", failed, compared, *maxRegress)
		os.Exit(1)
	}
	if *strict && missing > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d baseline benchmark(s) missing from the new run (strict mode) — refresh the baseline with scripts/bench.sh --update-baseline\n", missing)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d benchmarks within %.0f%% of baseline\n", compared, *maxRegress)
}

// allocsDelta renders the allocs/op pair for a comparison line; either
// side may be absent (old bench.sh output, or a benchmark without
// -benchmem data).
func allocsDelta(old, new *float64) string {
	switch {
	case old != nil && new != nil:
		return fmt.Sprintf("%7.0f -> %7.0f allocs/op", *old, *new)
	case new != nil:
		return fmt.Sprintf("%7s -> %7.0f allocs/op", "?", *new)
	case old != nil:
		return fmt.Sprintf("%7.0f -> %7s allocs/op", *old, "?")
	default:
		return ""
	}
}
