package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func writeJSON(t *testing.T, list []entry) string {
	t.Helper()
	raw, err := json.Marshal(list)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func f(v float64) *float64 { return &v }

// TestLoadAggregatesMedians: multi-sample runs (--count N) must reduce to
// the per-name median, not the first or slowest sample — the property that
// makes the CI gate noise-robust.
func TestLoadAggregatesMedians(t *testing.T) {
	path := writeJSON(t, []entry{
		{Name: "BenchmarkA", Bench: "BenchmarkA-8", NsOp: f(100), AllocsOp: f(10)},
		{Name: "BenchmarkA", Bench: "BenchmarkA-8", NsOp: f(900), AllocsOp: f(10)}, // one noisy outlier
		{Name: "BenchmarkA", Bench: "BenchmarkA-8", NsOp: f(110), AllocsOp: f(12)},
		{Name: "BenchmarkB", Bench: "BenchmarkB-8", NsOp: f(50)},
		{Name: "BenchmarkB", Bench: "BenchmarkB-8", NsOp: f(70)},
		{Name: "", Bench: "BenchmarkKeyedByBench-8", NsOp: f(5)},
		{Name: "BenchmarkNoNs", Bench: "BenchmarkNoNs-8"}, // skipped: no timing
	})
	got, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ns := *got["BenchmarkA"].NsOp; ns != 110 {
		t.Errorf("odd-count median ns = %v, want 110 (outlier must not win)", ns)
	}
	if al := *got["BenchmarkA"].AllocsOp; al != 10 {
		t.Errorf("median allocs = %v, want 10", al)
	}
	if ns := *got["BenchmarkB"].NsOp; ns != 60 {
		t.Errorf("even-count median ns = %v, want 60 (mean of middle pair)", ns)
	}
	if _, ok := got["BenchmarkKeyedByBench-8"]; !ok {
		t.Error("entry without a trimmed name must fall back to the bench key")
	}
	if _, ok := got["BenchmarkNoNs"]; ok {
		t.Error("entry without ns/op must be skipped")
	}
}

// TestEmitterParsesRealBenchOutput runs scripts/bench_emit.awk — the exact
// program bench.sh uses — against a fixture of real `go test -bench`
// output: sub-benchmark names with '=' inside multiple '/' segments,
// repeated -count samples, a failed benchmark, a name that needs JSON
// escaping, a 1-CPU host line without the -N suffix, and a line without
// -benchmem columns.
func TestEmitterParsesRealBenchOutput(t *testing.T) {
	awk, err := exec.LookPath("awk")
	if err != nil {
		t.Skip("awk not installed")
	}
	out, err := exec.Command(awk, "-v", "stamp=TS1",
		"-f", filepath.Join("..", "..", "scripts", "bench_emit.awk"),
		filepath.Join("testdata", "bench_raw.txt")).Output()
	if err != nil {
		t.Fatalf("awk: %v\n%s", err, out)
	}
	var list []entry
	if err := json.Unmarshal(out, &list); err != nil {
		t.Fatalf("emitter produced invalid JSON: %v\n%s", err, out)
	}
	byBench := map[string]entry{}
	names := map[string]int{}
	for _, e := range list {
		byBench[e.Bench] = e
		names[e.Name]++
	}
	if len(list) != 9 {
		t.Errorf("parsed %d entries, want 9 (3 triangle samples + 3 ablation arms + weird + 1-cpu + nomem)", len(list))
	}
	if names["BenchmarkEvalTriangleRandomGraph"] != 3 {
		t.Errorf("triangle -count samples = %d, want 3", names["BenchmarkEvalTriangleRandomGraph"])
	}
	arm, ok := byBench["BenchmarkEvalAblation/join=hash/key=interned/par=seq-8"]
	if !ok {
		t.Fatalf("ablation arm with '=' in multiple '/' segments lost; got %v", names)
	}
	if arm.Name != "BenchmarkEvalAblation/join=hash/key=interned/par=seq" {
		t.Errorf("trimmed name %q: only the -N cpu suffix may be cut", arm.Name)
	}
	if arm.NsOp == nil || *arm.NsOp != 1204500 || *arm.AllocsOp != 9031 || arm.Iters != 100 {
		t.Errorf("ablation arm fields wrong: %+v", arm)
	}
	weird, ok := byBench[`BenchmarkWeird/q="a\x"-8`]
	if !ok {
		t.Fatalf("name needing JSON escapes lost; entries: %v", names)
	}
	if *weird.NsOp != 5000 {
		t.Errorf("escaped-name entry ns = %v, want 5000", *weird.NsOp)
	}
	if e, ok := byBench["BenchmarkSingleCPUHost"]; !ok || e.Name != "BenchmarkSingleCPUHost" {
		t.Error("1-CPU host line (no -N suffix) lost or mistrimmed")
	}
	if e, ok := byBench["BenchmarkNoMem-16"]; !ok || e.BytesOp != nil || *e.NsOp != 42000 {
		t.Error("line without -benchmem columns must keep ns/op with null bytes/allocs")
	}
	if _, ok := names["BenchmarkFailedSetup"]; ok {
		t.Error("failed benchmark (name-only line) must be skipped")
	}
	if ts := list[0].TS; ts != "TS1" {
		t.Errorf("stamp %q not threaded through", ts)
	}
}
