// Command benchtables regenerates the paper's evaluation artifacts with
// measured evidence (see EXPERIMENTS.md for the experiment index):
//
//	-table 1        Table 1: summary of results, each cell verified (E1)
//	-table blowup   Theorem 4.10: exponential output size of MinProv (E5)
//	-table direct   Theorem 5.1: direct core computation scaling (E6)
//	-table ccq      Theorem 3.12: PTIME cCQ≠ minimization vs MinProv (E7)
//	-table apps     §1 motivation: core compactness + downstream speedups (E8)
//	-table contain  Cor. 3.10 context: equivalence-check runtime growth (E10)
//	-table all      everything
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"provmin/internal/apps/deletion"
	"provmin/internal/apps/prob"
	"provmin/internal/datalog"
	"provmin/internal/db"
	"provmin/internal/direct"
	"provmin/internal/eval"
	"provmin/internal/minimize"
	"provmin/internal/order"
	"provmin/internal/query"
	"provmin/internal/workload"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, blowup, direct, ccq, apps, contain, all")
	maxN := flag.Int("maxn", 3, "largest n for the Theorem 4.10 sweep (4 is slow)")
	flag.Parse()

	tables := map[string]func() error{
		"1":       table1,
		"blowup":  func() error { return blowup(*maxN) },
		"direct":  directScaling,
		"ccq":     ccqScaling,
		"apps":    appsTable,
		"contain": containScaling,
		"datalog": datalogTable,
	}
	names := []string{"1", "blowup", "direct", "ccq", "apps", "contain", "datalog"}
	if *table != "all" {
		fn, ok := tables[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
			os.Exit(2)
		}
		check(fn())
		return
	}
	for _, n := range names {
		check(tables[n]())
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func header(s string) {
	fmt.Println("==================================================================")
	fmt.Println(s)
	fmt.Println("==================================================================")
}

// table1 verifies every cell of Table 1 programmatically.
func table1() error {
	header("Table 1: Summary of Results (each cell verified by the engine)")
	fmt.Printf("%-8s | %-22s | %-26s | %-22s\n", "Class", "Standard minimal in", "P-minimal in class", "P-minimal overall")
	fmt.Println("---------+------------------------+----------------------------+----------------------")

	// Row 1: CQ≠.
	{
		m := minimize.StandardMinimizeCQNeq(workload.QNoPmin)
		stdInClass := len(m.Atoms) == len(workload.QNoPmin.Atoms) // minimal already
		// "No p-minimal query exists": verified via the Lemma 3.6 witness.
		equiv := minimize.EquivalentCQ(workload.QNoPmin, workload.QAlt)
		relD, err := order.CompareOnDB(query.Single(workload.QNoPmin), query.Single(workload.QAlt), workload.Table4())
		if err != nil {
			return err
		}
		relDp, err := order.CompareOnDB(query.Single(workload.QNoPmin), query.Single(workload.QAlt), workload.Table5())
		if err != nil {
			return err
		}
		incomparable := equiv && relD == order.Greater && relDp == order.Less
		out := minimize.MinProvCQ(workload.QNoPmin)
		overall := minimize.Equivalent(out, query.Single(workload.QNoPmin))
		fmt.Printf("%-8s | %-22s | %-26s | %-22s\n", "CQ!=",
			verified("in CQ!=", stdInClass),
			verified("none exists (witness)", incomparable),
			verified(fmt.Sprintf("in UCQ!= (%d adjuncts)", len(out.Adjuncts)), overall))
	}

	// Row 2: CQ.
	{
		m, err := minimize.StandardMinimizeCQ(workload.QConj)
		if err != nil {
			return err
		}
		stdMin := len(m.Atoms) == 2
		out := minimize.MinProvCQ(workload.QConj)
		rel, err := order.CompareOnDB(out, query.Single(workload.QConj), workload.Table2())
		if err != nil {
			return err
		}
		fmt.Printf("%-8s | %-22s | %-26s | %-22s\n", "CQ",
			verified("in CQ", stdMin),
			verified("= standard minimization", stdMin),
			verified(fmt.Sprintf("in UCQ!=, strictly terser (%s)", rel), rel == order.Less))
	}

	// Row 3: cCQ≠.
	{
		q := query.MustParse("ans(x) :- R(x,y), R(x,y), x != y")
		m, err := minimize.MinimizeCCQ(q)
		if err != nil {
			return err
		}
		ptime := len(m.Atoms) == 1
		out := minimize.MinProvCQ(q)
		same, err := order.CompareOnDB(out, query.Single(m), workload.Table2())
		if err != nil {
			return err
		}
		fmt.Printf("%-8s | %-22s | %-26s | %-22s\n", "cCQ!=",
			verified("in cCQ!= (PTIME)", ptime),
			verified("= standard minimization", ptime),
			verified("in cCQ!= itself", same == order.Equal))
	}

	// Row 4: UCQ≠. Witness: Qconj ∪ Q2 where Q2 ⊆ Qconj. Standard (Sagiv–
	// Yannakakis) minimization just drops the contained adjunct Q2 and keeps
	// Qconj; the p-minimal query is genuinely different and strictly terser.
	{
		u := query.MustParseUnion("ans(x) :- R(x,y), R(y,x)\nans(x) :- R(x,x)")
		std := minimize.StandardMinimizeUCQ(u)
		out := minimize.MinProv(u)
		rel, err := order.CompareOnDB(out, std, workload.Table2())
		if err != nil {
			return err
		}
		fmt.Printf("%-8s | %-22s | %-26s | %-22s\n", "UCQ!=",
			verified(fmt.Sprintf("in UCQ!= (%d adjuncts)", len(std.Adjuncts)), len(std.Adjuncts) == 1),
			verified("differs from standard min", rel == order.Less),
			verified(fmt.Sprintf("in UCQ!= (%d adjuncts)", len(out.Adjuncts)), minimize.Equivalent(out, u)))
	}
	return nil
}

func verified(label string, ok bool) string {
	mark := "OK"
	if !ok {
		mark = "FAIL"
	}
	return fmt.Sprintf("%s [%s]", label, mark)
}

// blowup measures the Theorem 4.10 exponential growth.
func blowup(maxN int) error {
	header("Theorem 4.10: p-minimal equivalents of Q_n are exponentially large")
	fmt.Printf("%4s %12s %14s %12s %12s %12s\n", "n", "completions", "out adjuncts", "out atoms", "2^n bound", "time")
	for n := 1; n <= maxN; n++ {
		q := workload.QN(n)
		start := time.Now()
		comps := minimize.PossibleCompletions(q, nil)
		out := minimize.MinProvCQ(q)
		elapsed := time.Since(start)
		atoms := out.NumAtoms()
		fmt.Printf("%4d %12d %14d %12d %12d %12s\n", n, len(comps), len(out.Adjuncts), atoms, 1<<n, elapsed.Round(time.Microsecond))
	}
	fmt.Println("shape check: output adjuncts >= 2^n, and both columns grow exponentially in n")
	return nil
}

// directScaling measures PTIME vs EXPTIME direct minimization (Thm 5.1).
func directScaling() error {
	header("Theorem 5.1: direct core computation — PTIME part vs exact part")
	fmt.Printf("%10s %10s %12s %14s %14s\n", "cycle len", "monomials", "poly size", "PTIME part", "exact (Aut)")
	for _, n := range []int{2, 3, 4, 5, 6} {
		q := workload.CycleCQ(n)
		d := db.NewInstance()
		db.NewGenerator(int64(n)).RandomGraph(d, "R", 5, 18)
		p, err := eval.Provenance(query.Single(q), d, db.Tuple{})
		if err != nil {
			return err
		}
		if p.IsZero() {
			fmt.Printf("%10d %10s (no cycle of this length in the random graph)\n", n, "-")
			continue
		}
		start := time.Now()
		core := direct.CoreUpToCoefficients(p)
		tP := time.Since(start)
		start = time.Now()
		_, err = direct.CoreExact(p, d, db.Tuple{}, nil)
		if err != nil {
			return err
		}
		tE := time.Since(start)
		fmt.Printf("%10d %10d %12d %14s %14s\n", n, core.NumMonomials(), p.Size(), tP.Round(time.Microsecond), tE.Round(time.Microsecond))
	}
	fmt.Println("shape check: the PTIME column scales with polynomial size; the exact column")
	fmt.Println("additionally pays the automorphism search, exponential in monomial size only")
	return nil
}

// ccqScaling contrasts PTIME cCQ≠ minimization with EXPTIME MinProv.
func ccqScaling() error {
	header("Theorem 3.12: cCQ!= minimization is PTIME (vs EXPTIME MinProv on the same input)")
	fmt.Printf("%8s %10s %14s %14s\n", "atoms", "vars", "cCQ!= min", "MinProv")
	for _, n := range []int{2, 3, 4, 5, 6} {
		// A complete query: chain of n atoms with all diseqs, each atom
		// duplicated once (so minimization has work to do).
		base := workload.ChainCQ(n)
		atoms := append([]query.Atom{}, base.Atoms...)
		atoms = append(atoms, base.Atoms...)
		qDup := query.NewCQ(base.Head, atoms, nil).CompleteWRT(nil)
		start := time.Now()
		if _, err := minimize.MinimizeCCQ(qDup); err != nil {
			return err
		}
		tFast := time.Since(start)
		start = time.Now()
		minimize.MinProvCQ(base)
		tSlow := time.Since(start)
		fmt.Printf("%8d %10d %14s %14s\n", len(qDup.Atoms), len(qDup.Vars()), tFast.Round(time.Microsecond), tSlow.Round(time.Microsecond))
	}
	fmt.Println("shape check: the cCQ!= column grows polynomially; MinProv explodes with the")
	fmt.Println("variable count (its canonical rewriting enumerates partitions)")
	return nil
}

// appsTable measures the core-provenance compactness and the downstream
// tool speedups the paper's introduction motivates.
func appsTable() error {
	header("§1 motivation: core provenance as compact input to provenance consumers")
	fmt.Printf("%-14s %10s %10s %8s %12s %12s %8s\n", "query", "full size", "core size", "ratio", "prob(full)", "prob(core)", "same?")
	type ca struct {
		name string
		q    *query.CQ
		d    *db.Instance
	}
	d1 := db.NewInstance()
	db.NewGenerator(3).RandomGraph(d1, "R", 5, 16)
	d2 := db.NewInstance()
	db.NewGenerator(8).RandomGraph(d2, "R", 4, 12)
	cases := []ca{
		{"Qconj/T2", workload.QConj, workload.Table2()},
		{"triangle/T6", workload.QHat, workload.Table6()},
		{"triangle/G16", workload.QHat, d1},
		{"C4/G12", workload.CycleCQ(4), d2},
	}
	for _, c := range cases {
		res, err := eval.EvalCQ(c.q, c.d)
		if err != nil {
			return err
		}
		fullSize, coreSize := 0, 0
		var tFull, tCore time.Duration
		agree := true
		for _, ot := range res.Tuples() {
			core := direct.CoreUpToCoefficients(ot.Prov)
			fullSize += ot.Prov.Size()
			coreSize += core.Size()
			start := time.Now()
			pf, err := prob.Exact(ot.Prov, prob.UniformProb(0.5))
			if err != nil {
				return err
			}
			tFull += time.Since(start)
			start = time.Now()
			pc, err := prob.Exact(core, prob.UniformProb(0.5))
			if err != nil {
				return err
			}
			tCore += time.Since(start)
			if diff := pf - pc; diff > 1e-9 || diff < -1e-9 {
				agree = false
			}
			// Deletion propagation agreement on a few tag sets.
			for _, v := range ot.Prov.Vars()[:min(2, len(ot.Prov.Vars()))] {
				del := map[string]bool{v: true}
				if deletion.Survives(ot.Prov, del) != deletion.Survives(core, del) {
					agree = false
				}
			}
		}
		ratio := "-"
		if coreSize > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(fullSize)/float64(coreSize))
		}
		fmt.Printf("%-14s %10d %10d %8s %12s %12s %8v\n", c.name, fullSize, coreSize, ratio,
			tFull.Round(time.Microsecond), tCore.Round(time.Microsecond), agree)
	}
	fmt.Println("shape check: core size <= full size; probabilistic inference and deletion")
	fmt.Println("propagation answers are identical from the core, at lower cost")
	return nil
}

// containScaling measures the growth of the equivalence decision procedure.
func containScaling() error {
	header("Containment/equivalence decision procedure: runtime growth (DP-hardness context)")
	fmt.Printf("%8s %8s %14s\n", "atoms", "vars", "equiv time")
	for _, n := range []int{2, 3, 4, 5, 6, 7} {
		a := workload.ChainCQ(n)
		b := workload.ChainCQ(n)
		start := time.Now()
		minimize.EquivalentCQ(a, b)
		fmt.Printf("%8d %8d %14s\n", n, len(a.Vars()), time.Since(start).Round(time.Microsecond))
	}
	fmt.Println("shape check: superpolynomial growth with query size, as the DP-completeness")
	fmt.Println("of the decision problem (Cor. 3.10) predicts for the general procedure")
	return nil
}

// datalogTable measures core-provenance compactness for unfolded
// non-recursive Datalog views (§8 extension, E12).
func datalogTable() error {
	header("§8 extension: core provenance of (non-recursive) Datalog views")
	program := datalog.MustParse(`
		Conn(x,y) :- E(x,y)
		Conn(x,y) :- E(x,z), E(z,y)
		Goal(x) :- Conn(x,y), Conn(y,x)
	`)
	u, err := program.Unfold("Goal")
	if err != nil {
		return err
	}
	fmt.Printf("view 'Goal' unfolds into %d branches over the EDB\n\n", len(u.Adjuncts))
	fmt.Printf("%10s %12s %12s %10s %14s\n", "edges", "raw size", "core size", "ratio", "direct time")
	for _, edges := range []int{6, 9, 12} {
		d := db.NewInstance()
		db.NewGenerator(int64(edges)).RandomGraph(d, "E", 4, edges)
		res, err := eval.EvalUCQ(u, d)
		if err != nil {
			return err
		}
		start := time.Now()
		core, err := direct.CoreResult(res, d, nil)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		raw, cs := res.TotalProvenanceSize(), core.TotalProvenanceSize()
		ratio := "-"
		if cs > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(raw)/float64(cs))
		}
		fmt.Printf("%10d %12d %12d %10s %14s\n", edges, raw, cs, ratio, elapsed.Round(time.Microsecond))
	}
	fmt.Println("shape check: view-stack provenance inflates with data; the core stays small")
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
