// Command provrouter is the provmind cluster's routing tier: a stateless
// HTTP front that exposes the single-node provmind API over a static set
// of nodes.
//
// Usage:
//
//	provrouter -peers a=http://host1:8411,b=http://host2:8411[,...]
//	           [-addr :8410] [-vnodes 64] [-probe-interval 2s]
//	           [-cache-entries 4096] [-cache-bytes 67108864]
//	           [-dial-timeout 1s] [-proxy-timeout 30s]
//
// Every request naming an instance is proxied to the node owning it on
// the consistent-hash ring (the same FNV family that stripes each node's
// registry); reads retry once against the ring replica when the owner is
// unreachable, and read responses are cached keyed by (instance,
// canonical request, generation) — a hit is served only while the owning
// node's current generation matches the entry's stamp, so the cache can
// go stale but never wrong. POST /admin/rebalance moves every misplaced
// instance to its ring owner by cold-blob handoff (the nodes must share
// one cold tier: a common -cold-dir or one S3 bucket).
//
// The router is stateless: restarting it only drops its cache. Run more
// than one for availability — identical -peers lists produce identical
// rings, so routers agree on placement without coordinating.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"provmin/internal/cluster"
	"provmin/internal/metrics"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	var (
		addr          = flag.String("addr", ":8410", "listen address")
		peers         = flag.String("peers", "", "cluster members as name=url,... (required)")
		vnodes        = flag.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = default; must match the nodes)")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "node health probing period (0 disables)")
		cacheEntries  = flag.Int("cache-entries", 4096, "max cached read responses (0 disables response caching)")
		cacheBytes    = flag.Int64("cache-bytes", 64<<20, "max cached read-response bytes (0 = entries-only bound)")
		dialTimeout   = flag.Duration("dial-timeout", time.Second, "TCP connect timeout to nodes (drives read failover)")
		proxyTimeout  = flag.Duration("proxy-timeout", 30*time.Second, "per-attempt upstream request timeout")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "provrouter: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *peers == "" {
		fmt.Fprintln(os.Stderr, "provrouter: -peers is required")
		flag.Usage()
		os.Exit(2)
	}

	nodes, err := cluster.ParsePeers(*peers)
	if err != nil {
		log.Fatalf("provrouter: %v", err)
	}
	reg := metrics.NewRegistry()
	topo, err := cluster.NewTopology(cluster.TopologyConfig{
		Peers:         nodes,
		VNodes:        *vnodes,
		ProbeInterval: *probeInterval,
		Metrics:       reg,
	})
	if err != nil {
		log.Fatalf("provrouter: %v", err)
	}
	defer topo.Close()

	// RouterConfig treats 0 as "use the default" (the engine Config
	// convention), so an explicit 0 on the command line (= disable /
	// unbound) maps to the negative sentinel.
	entries, bytes := *cacheEntries, *cacheBytes
	if entries == 0 {
		entries = -1
	}
	if bytes == 0 {
		bytes = -1
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Topology:     topo,
		CacheEntries: entries,
		CacheBytes:   bytes,
		DialTimeout:  *dialTimeout,
		ProxyTimeout: *proxyTimeout,
		Metrics:      reg,
	})
	if err != nil {
		log.Fatalf("provrouter: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("provrouter: listen: %v", err)
	}
	srv := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("provrouter listening on %s over %v (ring v%d, cache %d entries / %d bytes)",
		ln.Addr(), topo.Ring().Nodes(), topo.Ring().Version(), *cacheEntries, *cacheBytes)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("provrouter: %v", err)
	case sig := <-sigc:
		log.Printf("provrouter: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("provrouter: shutdown: %v", err)
		}
	}
}
