package main

import (
	"testing"

	"provmin/internal/analysis"
)

// TestRepoIsClean is the vettool-style integration check: the full
// analyzer suite over the whole module must report nothing. A vettool
// cannot be built without golang.org/x/tools, so the driver's loader is
// exercised directly; CI runs the same thing via the provlint binary.
func TestRepoIsClean(t *testing.T) {
	root, modPath, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.Load(analysis.LoadConfig{Dir: root, ModulePath: modPath})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(prog, suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestSuiteIsComplete pins the analyzer roster: the ISSUE contract is at
// least five analyzers, each independently tested against fixtures.
func TestSuiteIsComplete(t *testing.T) {
	if len(suite) < 5 {
		t.Fatalf("suite has %d analyzers, want >= 5", len(suite))
	}
	seen := map[string]bool{}
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
