// Command provlint runs the project's custom analyzers over a module.
//
// Usage:
//
//	provlint [-tests] [dir]
//
// dir defaults to the current directory and must contain (or sit below)
// a go.mod. provlint loads every package in the module from source,
// type-checks it, runs the analyzer suite, and prints one line per
// finding in the usual file:line:col style. The exit status is 1 if any
// finding is reported, 2 on a load or type error.
//
// provlint is the project's stand-in for a go vet -vettool multichecker:
// the analyzers mirror the golang.org/x/tools/go/analysis API so they
// can be ported to a vettool when that dependency is available, but the
// driver here loads and checks packages with the standard library only.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"provmin/internal/analysis"
	"provmin/internal/analysis/deterministic"
	"provmin/internal/analysis/errwrapsentinel"
	"provmin/internal/analysis/lockdiscipline"
	"provmin/internal/analysis/metricsconst"
	"provmin/internal/analysis/walexhaustive"
)

// suite is the full analyzer set, in reporting-name order.
var suite = []*analysis.Analyzer{
	deterministic.Analyzer,
	errwrapsentinel.Analyzer,
	lockdiscipline.Analyzer,
	metricsconst.Analyzer,
	walexhaustive.Analyzer,
}

func main() {
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: provlint [-tests] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	dir := "."
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		dir = flag.Arg(0)
	}

	root, modPath, err := findModule(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "provlint:", err)
		os.Exit(2)
	}

	prog, err := analysis.Load(analysis.LoadConfig{
		Dir:          root,
		ModulePath:   modPath,
		IncludeTests: *tests,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "provlint:", err)
		os.Exit(2)
	}

	findings, err := analysis.Run(prog, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "provlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "provlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mp := modulePath(data)
			if mp == "" {
				return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
			}
			return d, mp, nil
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod at or above %s", abs)
		}
	}
}

// modulePath extracts the module path from go.mod content.
func modulePath(data []byte) string {
	for _, line := range splitLines(string(data)) {
		var p string
		if n, _ := fmt.Sscanf(line, "module %s", &p); n == 1 {
			return p
		}
	}
	return ""
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
