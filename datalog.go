package provmin

import (
	"provmin/internal/datalog"
)

// Program is a non-recursive Datalog program over annotated relations. The
// paper's §8 leaves Datalog provenance minimization open; the non-recursive
// fragment unfolds into UCQ≠ where the paper's machinery applies directly:
// Unfold then MinProv computes a view's core provenance.
type Program = datalog.Program

// ParseProgram parses a Datalog program (one rule per line; relations never
// used as heads are extensional). Recursive programs are rejected.
func ParseProgram(text string) (*Program, error) { return datalog.Parse(text) }

// MustParseProgram is ParseProgram that panics on error.
func MustParseProgram(text string) *Program { return datalog.MustParse(text) }

// UnfoldProgram rewrites an intensional predicate of the program into an
// equivalent UCQ≠ over the extensional schema with composed provenance.
func UnfoldProgram(p *Program, goal string) (*Union, error) { return p.Unfold(goal) }
