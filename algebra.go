package provmin

import (
	"provmin/internal/algebra"
	"provmin/internal/db"
	"provmin/internal/eval"
)

// This file exposes the SPJU relational-algebra front-end: provenance-aware
// physical plans in the sense of Green et al. 2007, plus compilation to
// UCQ≠ so the paper's minimization machinery applies to plans. Different
// plans for the same query yield different provenance (§8 of the paper);
// the core provenance — MinProv of the compiled plan — is plan-invariant.

// Plan is a relational algebra expression (select/project/join/union/rename
// over annotated relations).
type Plan = algebra.Plan

// Condition is a selection comparison (column vs column or constant).
type Condition = algebra.Condition

// CompareOp is a selection operator.
type CompareOp = algebra.CompareOp

// Selection operators.
const (
	OpEq  = algebra.OpEq
	OpNeq = algebra.OpNeq
)

// Scan reads a stored relation, naming its columns.
func Scan(rel string, cols ...string) (Plan, error) { return algebra.NewScan(rel, cols...) }

// Select filters its input by a conjunction of conditions.
func Select(in Plan, conds ...Condition) (Plan, error) { return algebra.NewSelect(in, conds...) }

// Project keeps the named columns; collapsing annotations are added.
func Project(in Plan, cols ...string) (Plan, error) { return algebra.NewProject(in, cols...) }

// Join is the natural join on shared column names; annotations multiply.
func Join(l, r Plan) (Plan, error) { return algebra.NewJoin(l, r) }

// Rename renames one column.
func Rename(in Plan, from, to string) (Plan, error) { return algebra.NewRename(in, from, to) }

// UnionPlans combines two schema-compatible branches; annotations add.
func UnionPlans(l, r Plan) (Plan, error) { return algebra.NewUnion(l, r) }

// MustPlan panics on a plan-constructor error; for literal plans.
func MustPlan(p Plan, err error) Plan {
	if err != nil {
		panic(err)
	}
	return p
}

// EvalPlan evaluates a physical plan with provenance under the N[X]
// semantics of [19]. The provenance depends on the plan shape; use
// CompilePlan + MinProv for the plan-invariant core.
func EvalPlan(p Plan, d *Instance) (*Result, error) {
	return planEval(p, d)
}

func planEval(p Plan, d *db.Instance) (*eval.Result, error) { return algebra.Eval(p, d) }

// CompilePlan translates a plan into an equivalent UCQ≠ query with
// identical provenance semantics.
func CompilePlan(p Plan) (*Union, error) { return algebra.Compile(p) }
